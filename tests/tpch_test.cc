#include <gtest/gtest.h>

#include <set>

#include "engine/executor.h"
#include "tpch/generator.h"
#include "tpch/schema.h"

namespace silkroute::tpch {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(GenerateTpch(config, db_).ok());
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  size_t Rows(const std::string& table) {
    auto t = db_->GetTable(table);
    EXPECT_TRUE(t.ok());
    return t.ok() ? (*t)->num_rows() : 0;
  }

  static Database* db_;
};

Database* TpchTest::db_ = nullptr;

TEST_F(TpchTest, SchemaHasAllEightTables) {
  for (const char* name : {"Region", "Nation", "Supplier", "Part", "PartSupp",
                           "Customer", "Orders", "LineItem"}) {
    EXPECT_TRUE(db_->catalog().HasTable(name)) << name;
  }
}

TEST_F(TpchTest, RowCountsFollowScale) {
  TpchRowCounts counts = CountsForScale(0.005);
  EXPECT_EQ(Rows("Region"), counts.region);
  EXPECT_EQ(Rows("Nation"), counts.nation);
  EXPECT_EQ(Rows("Supplier"), counts.supplier);
  EXPECT_EQ(Rows("Part"), counts.part);
  EXPECT_EQ(Rows("PartSupp"), counts.partsupp);
  EXPECT_EQ(Rows("Customer"), counts.customer);
  EXPECT_EQ(Rows("Orders"), counts.orders);
  EXPECT_GT(Rows("LineItem"), Rows("Orders"));  // >= 1 item per order
}

TEST_F(TpchTest, CountsForScaleHasFloors) {
  TpchRowCounts tiny = CountsForScale(1e-9);
  EXPECT_GE(tiny.supplier, 10u);
  EXPECT_GE(tiny.part, 40u);
  EXPECT_EQ(tiny.nation, 25u);
}

TEST_F(TpchTest, GenerationIsDeterministic) {
  Database db1, db2;
  TpchConfig config;
  config.scale_factor = 0.002;
  ASSERT_TRUE(GenerateTpch(config, &db1).ok());
  ASSERT_TRUE(GenerateTpch(config, &db2).ok());
  for (const char* name : {"Supplier", "LineItem", "Orders"}) {
    auto t1 = db1.GetTable(name);
    auto t2 = db2.GetTable(name);
    ASSERT_TRUE(t1.ok() && t2.ok());
    ASSERT_EQ((*t1)->num_rows(), (*t2)->num_rows()) << name;
    for (size_t i = 0; i < (*t1)->num_rows(); ++i) {
      ASSERT_EQ((*t1)->rows()[i], (*t2)->rows()[i]) << name << " row " << i;
    }
  }
}

TEST_F(TpchTest, DifferentSeedsProduceDifferentData) {
  Database db1, db2;
  TpchConfig c1, c2;
  c1.scale_factor = c2.scale_factor = 0.002;
  c2.seed = c1.seed + 1;
  ASSERT_TRUE(GenerateTpch(c1, &db1).ok());
  ASSERT_TRUE(GenerateTpch(c2, &db2).ok());
  auto t1 = db1.GetTable("Supplier");
  auto t2 = db2.GetTable("Supplier");
  bool any_diff = false;
  for (size_t i = 0; i < (*t1)->num_rows() && i < (*t2)->num_rows(); ++i) {
    if (!((*t1)->rows()[i] == (*t2)->rows()[i])) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(TpchTest, PrimaryKeysAreUnique) {
  // Property: re-inserting all generated rows through the validating path
  // must succeed (types, nullability, PK uniqueness).
  Database fresh;
  ASSERT_TRUE(CreateTpchSchema(&fresh).ok());
  for (const char* name : {"Region", "Nation", "Supplier", "Part", "PartSupp",
                           "Customer", "Orders", "LineItem"}) {
    auto src = db_->GetTable(name);
    ASSERT_TRUE(src.ok());
    for (const auto& row : (*src)->rows()) {
      ASSERT_TRUE(fresh.Insert(name, row).ok()) << name;
    }
  }
}

TEST_F(TpchTest, ForeignKeysResolve) {
  // Every declared FK value must exist in the target table (checked with
  // the engine itself: anti-join must be empty).
  engine::QueryExecutor exec(db_);
  struct Check {
    const char* sql;
  } checks[] = {
      {"select s.suppkey from Supplier s left outer join Nation n on "
       "s.nationkey = n.nationkey where n.nationkey is null"},
      {"select o.orderkey from Orders o left outer join Customer c on "
       "o.custkey = c.custkey where c.custkey is null"},
      {"select l.orderkey from LineItem l left outer join Orders o on "
       "l.orderkey = o.orderkey where o.orderkey is null"},
      {"select ps.partkey from PartSupp ps left outer join Part p on "
       "ps.partkey = p.partkey where p.partkey is null"},
      {"select ps.partkey from PartSupp ps left outer join Supplier s on "
       "ps.suppkey = s.suppkey where s.suppkey is null"},
      {"select n.nationkey from Nation n left outer join Region r on "
       "n.regionkey = r.regionkey where r.regionkey is null"},
  };
  for (const auto& check : checks) {
    auto r = exec.ExecuteSql(check.sql);
    ASSERT_TRUE(r.ok()) << check.sql << ": " << r.status();
    EXPECT_EQ(r->rows.size(), 0u) << check.sql;
  }
}

TEST_F(TpchTest, LineItemPairsComeFromPartSupp) {
  engine::QueryExecutor exec(db_);
  auto r = exec.ExecuteSql(
      "select l.orderkey from LineItem l left outer join PartSupp ps on "
      "l.partkey = ps.partkey and l.suppkey = ps.suppkey "
      "where ps.partkey is null");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->rows.size(), 0u);
}

TEST_F(TpchTest, SomeSuppliersHaveNoParts) {
  engine::QueryExecutor exec(db_);
  auto r = exec.ExecuteSql(
      "select s.suppkey from Supplier s left outer join PartSupp ps on "
      "s.suppkey = ps.suppkey where ps.suppkey is null");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->rows.size(), 0u);  // outer joins must have unmatched parents
}

TEST_F(TpchTest, SuppliersDistinctWithinOrder) {
  // The generator guarantees distinct suppliers per order, so the paper's
  // views never create duplicate <order> instances.
  auto li = db_->GetTable("LineItem");
  ASSERT_TRUE(li.ok());
  std::map<int64_t, std::set<int64_t>> suppliers_by_order;
  for (const auto& row : (*li)->rows()) {
    int64_t orderkey = row[0].AsInt64();
    int64_t suppkey = row[2].AsInt64();
    EXPECT_TRUE(suppliers_by_order[orderkey].insert(suppkey).second)
        << "order " << orderkey << " repeats supplier " << suppkey;
  }
}

TEST_F(TpchTest, QueryTimeoutAborts) {
  engine::QueryExecutor exec(db_);
  exec.set_timeout_ms(1e-6);  // already expired at the first check
  auto r = exec.ExecuteSql(
      "select l.orderkey from LineItem l, Orders o "
      "where l.orderkey = o.orderkey");
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(TpchTest, GenerousTimeoutSucceeds) {
  engine::QueryExecutor exec(db_);
  exec.set_timeout_ms(60000);
  auto r = exec.ExecuteSql(
      "select l.orderkey from LineItem l, Orders o "
      "where l.orderkey = o.orderkey");
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST_F(TpchTest, TimeoutPropagatesIntoDerivedTables) {
  engine::QueryExecutor exec(db_);
  exec.set_timeout_ms(1e-6);
  auto r = exec.ExecuteSql(
      "select D.k from (select l.orderkey as k from LineItem l, Orders o "
      "where l.orderkey = o.orderkey) as D");
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

TEST_F(TpchTest, DatabaseSizeScalesRoughlyLinearly) {
  Database small, large;
  TpchConfig cs, cl;
  cs.scale_factor = 0.002;
  cl.scale_factor = 0.008;
  ASSERT_TRUE(GenerateTpch(cs, &small).ok());
  ASSERT_TRUE(GenerateTpch(cl, &large).ok());
  double ratio = static_cast<double>(large.TotalByteSize()) /
                 static_cast<double>(small.TotalByteSize());
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 8.0);
}

}  // namespace
}  // namespace silkroute::tpch
