#include "silkroute/subview.h"

#include <gtest/gtest.h>

#include <sstream>

#include "rxl/parser.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

TEST(SubviewPathTest, ParsesPlainPath) {
  auto steps = ParseSubviewPath("/supplier/part/order");
  ASSERT_TRUE(steps.ok()) << steps.status();
  ASSERT_EQ(steps->size(), 3u);
  EXPECT_EQ((*steps)[0].tag, "supplier");
  EXPECT_EQ((*steps)[2].tag, "order");
  EXPECT_TRUE((*steps)[0].predicates.empty());
}

TEST(SubviewPathTest, ParsesPredicates) {
  auto steps =
      ParseSubviewPath("/supplier[nation='FRANCE'][name='x']/part");
  ASSERT_TRUE(steps.ok()) << steps.status();
  ASSERT_EQ((*steps)[0].predicates.size(), 2u);
  EXPECT_EQ((*steps)[0].predicates[0].child_tag, "nation");
  EXPECT_EQ((*steps)[0].predicates[0].literal.AsString(), "FRANCE");
}

TEST(SubviewPathTest, ParsesIntegerLiteral) {
  auto steps = ParseSubviewPath("/order[orderkey=42]");
  ASSERT_TRUE(steps.ok()) << steps.status();
  EXPECT_EQ((*steps)[0].predicates[0].literal.AsInt64(), 42);
}

TEST(SubviewPathTest, Errors) {
  EXPECT_FALSE(ParseSubviewPath("").ok());
  EXPECT_FALSE(ParseSubviewPath("supplier").ok());
  EXPECT_FALSE(ParseSubviewPath("/supplier[name]").ok());
  EXPECT_FALSE(ParseSubviewPath("/supplier[name='x'").ok());
  EXPECT_FALSE(ParseSubviewPath("/supplier[name='x").ok());
  EXPECT_FALSE(ParseSubviewPath("/").ok());
}

class SubviewComposeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { db_ = MakeTinyTpch(0.002).release(); }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  rxl::RxlQuery Compose(const char* path) {
    auto view = rxl::ParseRxl(Query1Rxl());
    EXPECT_TRUE(view.ok());
    auto composed = ComposeSubview(*view, path);
    EXPECT_TRUE(composed.ok()) << composed.status();
    return composed.ok() ? std::move(composed).value() : rxl::RxlQuery{};
  }

  static Database* db_;
};

Database* SubviewComposeTest::db_ = nullptr;

TEST_F(SubviewComposeTest, RootStepKeepsWholeView) {
  rxl::RxlQuery composed = Compose("/supplier");
  EXPECT_EQ(composed.root.from.size(), 1u);
  ASSERT_EQ(composed.root.construct.size(), 1u);
  EXPECT_EQ(composed.root.construct[0].element->tag, "supplier");
  // The composed query is valid RXL and builds the same tree shape.
  auto tree = ViewTree::Build(composed, db_->catalog());
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->num_nodes(), 10u);
}

TEST_F(SubviewComposeTest, DeepPathAccumulatesScope) {
  rxl::RxlQuery composed = Compose("/supplier/part/order");
  // Scope: Supplier, PartSupp, Part, LineItem, Orders.
  EXPECT_EQ(composed.root.from.size(), 5u);
  EXPECT_EQ(composed.root.construct[0].element->tag, "order");
  auto tree = ViewTree::Build(composed, db_->catalog());
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->num_nodes(), 4u);  // order, orderkey, customer, nation
}

TEST_F(SubviewComposeTest, PredicateAddsRenamedScope) {
  rxl::RxlQuery composed = Compose("/supplier[nation='FRANCE']");
  // Nation joined twice: once for the predicate (renamed), once in the
  // retained subtree block.
  ASSERT_EQ(composed.root.from.size(), 2u);
  EXPECT_EQ(composed.root.from[1].table, "Nation");
  EXPECT_NE(composed.root.from[1].var, "n");  // renamed
  // Last condition equates the renamed nation's name with the literal.
  const rxl::Condition& last = composed.root.where.back();
  EXPECT_EQ(last.rhs.literal.AsString(), "FRANCE");
  EXPECT_EQ(last.lhs.field.var, composed.root.from[1].var);
  auto tree = ViewTree::Build(composed, db_->catalog());
  ASSERT_TRUE(tree.ok()) << tree.status();
}

TEST_F(SubviewComposeTest, MissingStepIsNotFound) {
  auto view = rxl::ParseRxl(Query1Rxl());
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(ComposeSubview(*view, "/supplier/zzz").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ComposeSubview(*view, "/zzz").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(
      ComposeSubview(*view, "/supplier[zzz='x']").status().code(),
      StatusCode::kNotFound);
}

class SubviewPublishTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTinyTpch(0.002).release();
    publisher_ = new Publisher(db_);
  }
  static void TearDownTestSuite() {
    delete publisher_;
    delete db_;
    publisher_ = nullptr;
    db_ = nullptr;
  }

  std::string PublishPath(const char* path) {
    PublishOptions options;
    options.document_element = "result";
    std::ostringstream out;
    auto result =
        publisher_->PublishSubview(Query1Rxl(), path, options, &out);
    EXPECT_TRUE(result.ok()) << result.status();
    return out.str();
  }

  static Database* db_;
  static Publisher* publisher_;
};

Database* SubviewPublishTest::db_ = nullptr;
Publisher* SubviewPublishTest::publisher_ = nullptr;

TEST_F(SubviewPublishTest, PredicateSelectsMatchingSuppliers) {
  // Full view: which suppliers are in which nation?
  std::ostringstream full;
  PublishOptions options;
  options.document_element = "result";
  ASSERT_TRUE(publisher_->Publish(Query1Rxl(), options, &full).ok());
  auto full_doc = xml::ParseXml(full.str());
  ASSERT_TRUE(full_doc.ok());
  std::map<std::string, int> by_nation;
  for (const auto* s : (*full_doc)->Children("supplier")) {
    ++by_nation[s->FirstChild("nation")->text];
  }
  ASSERT_FALSE(by_nation.empty());
  const auto& [nation, expected] = *by_nation.begin();

  std::string xml =
      PublishPath(("/supplier[nation='" + nation + "']").c_str());
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << xml;
  auto suppliers = (*doc)->Children("supplier");
  EXPECT_EQ(static_cast<int>(suppliers.size()), expected);
  for (const auto* s : suppliers) {
    EXPECT_EQ(s->FirstChild("nation")->text, nation);
  }
}

TEST_F(SubviewPublishTest, DeepPathPublishesFragmentElements) {
  std::string xml = PublishPath("/supplier/part");
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  EXPECT_GT((*doc)->Children("part").size(), 0u);
  EXPECT_TRUE((*doc)->Children("supplier").empty());
  // Every part element has a name child first.
  for (const auto* part : (*doc)->Children("part")) {
    ASSERT_GT(part->NumChildren(), 0u);
    EXPECT_EQ(part->children[0]->name, "name");
  }
}

TEST_F(SubviewPublishTest, IntegerPredicateOnOrderKey) {
  std::string xml = PublishPath("/supplier/part/order[orderkey=7]");
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  for (const auto* order : (*doc)->Children("order")) {
    EXPECT_EQ(order->FirstChild("orderkey")->text, "7");
  }
}

TEST_F(SubviewPublishTest, SubviewResultSmallerThanView) {
  // Sec. 7: user queries extract small fragments of the entire view.
  PublishOptions options;
  options.document_element = "result";
  std::ostringstream full, fragment;
  ASSERT_TRUE(publisher_->Publish(Query1Rxl(), options, &full).ok());
  auto result = publisher_->PublishSubview(
      Query1Rxl(), "/supplier/part/order[orderkey=7]", options, &fragment);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(fragment.str().size(), full.str().size() / 4);
}

}  // namespace
}  // namespace silkroute::core
