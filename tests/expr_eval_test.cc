#include <gtest/gtest.h>

#include "engine/expr_eval.h"
#include "sql/parser.h"

namespace silkroute::engine {
namespace {

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() {
    schema_.Add({"t", "a"});
    schema_.Add({"t", "b"});
    schema_.Add({"t", "s"});
  }

  /// Binds `text` and evaluates it against (a, b, s).
  Value Eval(const std::string& text, Value a, Value b, Value s) {
    auto expr = sql::ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    auto bound = BindExpr(**expr, schema_);
    EXPECT_TRUE(bound.ok()) << bound.status();
    Tuple row{std::move(a), std::move(b), std::move(s)};
    return (*bound)->Eval(row);
  }

  Tribool Test(const std::string& text, Value a, Value b, Value s) {
    auto expr = sql::ParseExpression(text);
    EXPECT_TRUE(expr.ok()) << expr.status();
    auto bound = BindExpr(**expr, schema_);
    EXPECT_TRUE(bound.ok()) << bound.status();
    Tuple row{std::move(a), std::move(b), std::move(s)};
    return (*bound)->Test(row);
  }

  RelSchema schema_;
};

TEST_F(ExprEvalTest, ColumnAccessQualifiedAndBare) {
  EXPECT_EQ(Eval("a", Value::Int64(7), Value::Null(), Value::Null()).AsInt64(),
            7);
  EXPECT_EQ(
      Eval("t.b", Value::Null(), Value::Int64(9), Value::Null()).AsInt64(), 9);
}

TEST_F(ExprEvalTest, UnresolvedColumnFailsBinding) {
  auto expr = sql::ParseExpression("nope");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(BindExpr(**expr, schema_).status().code(), StatusCode::kNotFound);
}

TEST_F(ExprEvalTest, AmbiguousColumnFailsBinding) {
  RelSchema dup;
  dup.Add({"x", "a"});
  dup.Add({"y", "a"});
  auto expr = sql::ParseExpression("a");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(BindExpr(**expr, dup).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ExprEvalTest, ComparisonOperators) {
  EXPECT_EQ(Test("a = 3", Value::Int64(3), Value::Null(), Value::Null()),
            Tribool::kTrue);
  EXPECT_EQ(Test("a <> 3", Value::Int64(3), Value::Null(), Value::Null()),
            Tribool::kFalse);
  EXPECT_EQ(Test("a < b", Value::Int64(1), Value::Int64(2), Value::Null()),
            Tribool::kTrue);
  EXPECT_EQ(Test("a >= b", Value::Int64(2), Value::Int64(2), Value::Null()),
            Tribool::kTrue);
}

TEST_F(ExprEvalTest, NullComparisonIsUnknown) {
  EXPECT_EQ(Test("a = 3", Value::Null(), Value::Null(), Value::Null()),
            Tribool::kUnknown);
  EXPECT_EQ(Test("a = b", Value::Null(), Value::Null(), Value::Null()),
            Tribool::kUnknown);
}

TEST_F(ExprEvalTest, ThreeValuedAnd) {
  // false AND unknown = false (not unknown).
  EXPECT_EQ(
      Test("a = 1 and b = 1", Value::Int64(2), Value::Null(), Value::Null()),
      Tribool::kFalse);
  // true AND unknown = unknown.
  EXPECT_EQ(
      Test("a = 1 and b = 1", Value::Int64(1), Value::Null(), Value::Null()),
      Tribool::kUnknown);
}

TEST_F(ExprEvalTest, ThreeValuedOr) {
  // true OR unknown = true.
  EXPECT_EQ(
      Test("a = 1 or b = 1", Value::Int64(1), Value::Null(), Value::Null()),
      Tribool::kTrue);
  // false OR unknown = unknown.
  EXPECT_EQ(
      Test("a = 1 or b = 1", Value::Int64(2), Value::Null(), Value::Null()),
      Tribool::kUnknown);
}

TEST_F(ExprEvalTest, NotOfUnknownIsUnknown) {
  EXPECT_EQ(Test("not a = 1", Value::Null(), Value::Null(), Value::Null()),
            Tribool::kUnknown);
  EXPECT_EQ(Test("not a = 1", Value::Int64(1), Value::Null(), Value::Null()),
            Tribool::kFalse);
}

TEST_F(ExprEvalTest, IsNull) {
  EXPECT_EQ(Test("a is null", Value::Null(), Value::Null(), Value::Null()),
            Tribool::kTrue);
  EXPECT_EQ(Test("a is null", Value::Int64(0), Value::Null(), Value::Null()),
            Tribool::kFalse);
  EXPECT_EQ(
      Test("a is not null", Value::Int64(0), Value::Null(), Value::Null()),
      Tribool::kTrue);
}

TEST_F(ExprEvalTest, IntegerArithmeticStaysInt) {
  Value v = Eval("a + b * 2", Value::Int64(1), Value::Int64(3), Value::Null());
  ASSERT_TRUE(v.is_int64());
  EXPECT_EQ(v.AsInt64(), 7);
}

TEST_F(ExprEvalTest, DivisionIsDouble) {
  Value v = Eval("a / b", Value::Int64(7), Value::Int64(2), Value::Null());
  ASSERT_TRUE(v.is_double());
  EXPECT_DOUBLE_EQ(v.AsDouble(), 3.5);
}

TEST_F(ExprEvalTest, ArithmeticWithNullIsNull) {
  EXPECT_TRUE(
      Eval("a + 1", Value::Null(), Value::Null(), Value::Null()).is_null());
}

TEST_F(ExprEvalTest, StringEquality) {
  EXPECT_EQ(Test("s = 'abc'", Value::Null(), Value::Null(),
                 Value::String("abc")),
            Tribool::kTrue);
  EXPECT_EQ(Test("s = 'abc'", Value::Null(), Value::Null(),
                 Value::String("abd")),
            Tribool::kFalse);
}

TEST_F(ExprEvalTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Test("a = 3.0", Value::Int64(3), Value::Null(), Value::Null()),
            Tribool::kTrue);
}

TEST_F(ExprEvalTest, ComparisonAsScalarYieldsIntOrNull) {
  EXPECT_EQ(
      Eval("a = 1", Value::Int64(1), Value::Null(), Value::Null()).AsInt64(),
      1);
  EXPECT_EQ(
      Eval("a = 2", Value::Int64(1), Value::Null(), Value::Null()).AsInt64(),
      0);
  EXPECT_TRUE(
      Eval("a = 1", Value::Null(), Value::Null(), Value::Null()).is_null());
}

}  // namespace
}  // namespace silkroute::engine
