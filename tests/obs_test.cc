// Tests for the observability layer (src/obs/ and its wiring): span-id
// determinism and inert handles, histogram bucket/percentile math, the
// well-formedness of span trees emitted by real (serial and degraded
// service) publishes including the 1%-accurate phase reproduction, the
// consistency of MetricsRegistry::Snapshot() while 8 concurrent publishers
// are writing (the TSan target), and the Prometheus text exposition
// against a golden file.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/fault_injection.h"
#include "engine/measured_oracle.h"
#include "engine/result_cache.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "service/publishing_service.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute::obs {
namespace {

namespace testutil = core::testutil;

const std::string* FindAnnotation(const Span& span, const std::string& key) {
  for (const auto& a : span.annotations) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

/// Structural invariants every finished trace must satisfy: unique
/// non-empty ids, monotone timestamps, parents present, child ids formed
/// as `<parent>.<ordinal>`, and children starting no earlier than their
/// parent. (A child may END after its parent: degradation follow-ups
/// outlive the component span they replace.)
std::map<std::string, const Span*> ExpectWellFormedTree(
    const std::vector<Span>& spans) {
  std::map<std::string, const Span*> by_id;
  for (const auto& s : spans) {
    EXPECT_FALSE(s.id.empty());
    EXPECT_FALSE(s.name.empty()) << "span " << s.id;
    EXPECT_GE(s.end_ns, s.start_ns) << "span " << s.id;
    EXPECT_TRUE(by_id.emplace(s.id, &s).second) << "duplicate id " << s.id;
  }
  for (const auto& s : spans) {
    if (s.parent_id.empty()) {
      EXPECT_EQ(s.id.find('.'), std::string::npos)
          << "root with dotted id " << s.id;
      continue;
    }
    auto parent = by_id.find(s.parent_id);
    EXPECT_NE(parent, by_id.end()) << "missing parent of " << s.id;
    if (parent == by_id.end()) continue;
    const std::string prefix = s.parent_id + ".";
    EXPECT_EQ(s.id.rfind(prefix, 0), 0u)
        << "id " << s.id << " not under parent " << s.parent_id;
    if (s.id.rfind(prefix, 0) != 0) continue;
    EXPECT_EQ(s.id.find('.', prefix.size()), std::string::npos)
        << "id " << s.id << " skips a generation under " << s.parent_id;
    EXPECT_GE(s.start_ns, parent->second->start_ns)
        << "child " << s.id << " starts before parent " << s.parent_id;
  }
  return by_id;
}

/// Sums the "ms" annotations of `phase_name` spans below `plan` (id-prefix
/// descendants) and checks them against `expected` with the trace_check
/// tolerance: 1% relative plus %.3f rounding slack per term.
void ExpectPhaseSum(const std::vector<Span>& spans, const Span& plan,
                    const std::string& phase_name, double expected) {
  const std::string prefix = plan.id + ".";
  double sum = 0;
  size_t n = 0;
  for (const auto& s : spans) {
    if (s.name != phase_name || s.id.rfind(prefix, 0) != 0) continue;
    const std::string* ms = FindAnnotation(s, "ms");
    ASSERT_NE(ms, nullptr) << phase_name << " span " << s.id << " lacks ms";
    sum += std::atof(ms->c_str());
    ++n;
  }
  EXPECT_NEAR(sum, expected,
              0.01 * expected + 0.001 * static_cast<double>(n + 1))
      << phase_name << " over plan " << plan.id;
}

// ---------------------------------------------------------------------------
// Tracer core.

TEST(TracerTest, AssignsDeterministicHierarchicalIds) {
  CollectingSink sink;
  Tracer tracer(&sink);
  {
    SpanHandle r1 = tracer.StartRoot("request");
    SpanHandle p1 = tracer.StartChild(&r1, "plan");
    SpanHandle c1 = tracer.StartChild(&p1, "component");
    SpanHandle p2 = tracer.StartChild(&r1, "plan");
    SpanHandle r2 = tracer.StartRoot("request");
    EXPECT_EQ(r1.id(), "1");
    EXPECT_EQ(p1.id(), "1.1");
    EXPECT_EQ(c1.id(), "1.1.1");
    EXPECT_EQ(p2.id(), "1.2");
    EXPECT_EQ(r2.id(), "2");
    EXPECT_TRUE(r1.recording());
  }
  EXPECT_EQ(sink.size(), 5u);
  ExpectWellFormedTree(sink.spans());
}

TEST(TracerTest, NullTracerYieldsInertHandles) {
  SpanHandle root = Tracer::Root(nullptr, "request");
  EXPECT_FALSE(root.recording());
  root.Annotate("k", "v");
  root.AnnotateMs("ms", 1.5);
  SpanHandle child = Tracer::Child(nullptr, &root, "plan");
  EXPECT_FALSE(child.recording());
  child.End();
  root.End();  // idempotent no-ops; must not crash
}

TEST(TracerTest, EndIsIdempotentAndDestructionEnds) {
  CollectingSink sink;
  Tracer tracer(&sink);
  SpanHandle a = tracer.StartRoot("a");
  a.End();
  a.End();
  EXPECT_EQ(sink.size(), 1u);
  { SpanHandle b = tracer.StartRoot("b"); }  // ends via destructor
  EXPECT_EQ(sink.size(), 2u);
}

// ---------------------------------------------------------------------------
// Metrics core.

TEST(MetricsTest, HistogramBucketsCoverEverySample) {
  Histogram h;
  const uint64_t samples[] = {0, 1, 2, 3, 5, 8, 100, 1000, 4096};
  uint64_t total = 0;
  for (uint64_t v : samples) {
    h.Record(v);
    total += v;
  }
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, std::size(samples));
  EXPECT_EQ(snap.sum, total);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 4096u);
  uint64_t bucket_total = 0;
  for (uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, snap.count);
  for (double p : {0.5, 0.95, 0.99}) {
    double q = snap.Percentile(p);
    EXPECT_GE(q, static_cast<double>(snap.min));
    EXPECT_LE(q, static_cast<double>(snap.max));
  }
}

TEST(MetricsTest, PercentileOfConstantSamplesIsExact) {
  Histogram h;
  for (int i = 0; i < 32; ++i) h.Record(7);  // bucket [4,8) upper bound 7
  HistogramSnapshot snap = h.Snapshot();
  EXPECT_DOUBLE_EQ(snap.Percentile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(0.99), 7.0);
}

TEST(MetricsTest, LabeledNameFoldsLabels) {
  EXPECT_EQ(LabeledName("silkroute_breaker_trips_total", {{"table", "Orders"}}),
            "silkroute_breaker_trips_total{table=\"Orders\"}");
  EXPECT_EQ(LabeledName("x", {{"a", "1"}, {"b", "2"}}),
            "x{a=\"1\",b=\"2\"}");
}

TEST(MetricsTest, RegistryPointersAreStable) {
  MetricsRegistry registry;
  Counter* c = registry.counter("c");
  c->Add(3);
  EXPECT_EQ(registry.counter("c"), c);
  EXPECT_EQ(registry.Snapshot().counters.at("c"), 3u);
}

// ---------------------------------------------------------------------------
// Traced publishes: span-tree shape and phase reproduction.

TEST(TracedPublishTest, SerialPlanSpanTreeReproducesPhaseTotals) {
  auto db = testutil::MakeTinyTpch();
  core::Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(core::Query1Rxl());
  ASSERT_TRUE(tree.ok()) << tree.status();

  CollectingSink sink;
  Tracer tracer(&sink);
  MetricsRegistry registry;
  core::PublishOptions options;
  options.collect_sql = false;
  options.document_element = "suppliers";
  options.tracer = &tracer;
  options.metrics_registry = &registry;
  std::ostringstream out;
  auto metrics = publisher.ExecutePlan(*tree, 0x1E8, options, &out);
  ASSERT_TRUE(metrics.ok()) << metrics.status();

  std::vector<Span> spans = sink.spans();
  auto by_id = ExpectWellFormedTree(spans);

  const Span* plan = nullptr;
  size_t components = 0;
  for (const auto& s : spans) {
    if (s.name == "plan") {
      EXPECT_EQ(plan, nullptr) << "more than one plan span";
      plan = &s;
    }
    if (s.name == "component") {
      ++components;
      EXPECT_NE(FindAnnotation(s, "nodes"), nullptr) << s.id;
      EXPECT_NE(FindAnnotation(s, "tables"), nullptr) << s.id;
    }
  }
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->parent_id.empty());  // no service request above it
  EXPECT_EQ(components, metrics->num_streams);

  // The trace alone reproduces the PlanMetrics phase split.
  ExpectPhaseSum(spans, *plan, "phase:query", metrics->query_ms);
  ExpectPhaseSum(spans, *plan, "phase:bind", metrics->bind_ms);
  ExpectPhaseSum(spans, *plan, "phase:tag", metrics->tag_ms);

  MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.at("silkroute_plans_total"), 1u);
  EXPECT_EQ(snap.histograms.at("silkroute_phase_query_us").count, 1u);
}

TEST(TracedPublishTest, DegradedFollowUpsNestUnderFailedComponent) {
  auto db = testutil::MakeTinyTpch();
  engine::DatabaseExecutor db_executor(db.get());
  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.table = "PartSupp";
  rule.fail = true;
  policy.rules.push_back(rule);
  engine::FaultInjectingExecutor faulty(&db_executor, policy);
  faulty.set_sleep_fn([](double) {});

  CollectingSink sink;
  Tracer tracer(&sink);
  MetricsRegistry registry;
  service::ServiceOptions options;
  options.workers = 2;
  options.executor = &faulty;
  options.retry.sleep_fn = [](double) {};
  options.tracer = &tracer;
  options.metrics_registry = &registry;
  service::PublishingService service(db.get(), options);

  service::ServiceRequest request;
  request.rxl = std::string(core::Query1Rxl());
  request.options.document_element = "suppliers";
  service::ServiceResponse response = service.Publish(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status;

  std::vector<Span> spans = sink.spans();
  auto by_id = ExpectWellFormedTree(spans);

  // Degradation shows up in the trace as component spans nested under the
  // failed component span...
  bool nested_component = false;
  for (const auto& s : spans) {
    if (s.name != "component" || s.parent_id.empty()) continue;
    auto parent = by_id.find(s.parent_id);
    ASSERT_NE(parent, by_id.end());
    if (parent->second->name == "component") nested_component = true;
  }
  EXPECT_TRUE(nested_component);

  // ...and in the per-component outcomes as a degraded entry attributed to
  // the sick table.
  const auto& components = response.result.metrics.components;
  ASSERT_FALSE(components.empty());
  bool degraded_on_sick_table = false;
  for (const auto& outcome : components) {
    if (!outcome.degraded) continue;
    for (const auto& table : outcome.tables) {
      if (table == "PartSupp") degraded_on_sick_table = true;
    }
  }
  EXPECT_TRUE(degraded_on_sick_table);
  EXPECT_GT(response.result.metrics.degraded_components, 0u);
}

// ---------------------------------------------------------------------------
// Concurrent snapshot consistency (the TSan target): 8 publishers drive
// the service while a reader polls Snapshot() and the trace sink. Mid-run
// every per-series statistic must be monotone across polls; at quiescence
// the full cross-field invariants must hold.

TEST(ObsConcurrencyTest, SnapshotsStayConsistentUnderConcurrentPublishers) {
  auto db = testutil::MakeTinyTpch();
  CollectingSink sink;
  Tracer tracer(&sink);
  MetricsRegistry registry;
  service::ServiceOptions options;
  options.workers = 4;
  options.tracer = &tracer;
  options.metrics_registry = &registry;
  service::PublishingService service(db.get(), options);

  service::ServiceRequest prototype;
  prototype.rxl = std::string(core::Query1Rxl());
  prototype.options.document_element = "suppliers";

  std::atomic<bool> done{false};
  std::thread reader([&] {
    std::map<std::string, uint64_t> last_counts;
    std::map<std::string, uint64_t> last_counters;
    while (!done.load(std::memory_order_acquire)) {
      MetricsSnapshot snap = registry.Snapshot();
      for (const auto& [name, value] : snap.counters) {
        auto it = last_counters.find(name);
        if (it != last_counters.end()) {
          EXPECT_GE(value, it->second) << "counter went backwards: " << name;
        }
        last_counters[name] = value;
      }
      for (const auto& [name, h] : snap.histograms) {
        auto it = last_counts.find(name);
        if (it != last_counts.end()) {
          EXPECT_GE(h.count, it->second) << "histogram shrank: " << name;
        }
        last_counts[name] = h.count;
      }
      for (const Span& s : sink.spans()) {
        EXPECT_GE(s.end_ns, s.start_ns) << s.id;  // only finished spans
      }
      std::this_thread::yield();
    }
  });

  std::vector<service::ServiceRequest> batch(8, prototype);
  std::vector<service::ServiceResponse> responses =
      service.PublishAll(std::move(batch));
  done.store(true, std::memory_order_release);
  reader.join();

  for (const auto& response : responses) {
    EXPECT_TRUE(response.status.ok()) << response.status;
  }

  // Quiescent: the full invariants hold exactly.
  MetricsSnapshot snap = registry.Snapshot();
  for (const auto& [name, h] : snap.histograms) {
    uint64_t bucket_total = 0;
    for (uint64_t b : h.buckets) bucket_total += b;
    EXPECT_EQ(bucket_total, h.count) << name;
    if (h.count > 0) {
      EXPECT_GE(h.max, h.min) << name;
      EXPECT_GE(h.sum, h.min * h.count) << name;
      EXPECT_LE(h.sum, h.max * h.count) << name;
    }
  }
  EXPECT_EQ(snap.counters.at("silkroute_requests_completed_total"), 8u);
  EXPECT_EQ(snap.histograms.at("silkroute_request_us").count, 8u);

  // The final trace is one well-formed tree per request.
  std::vector<Span> spans = sink.spans();
  ExpectWellFormedTree(spans);
  size_t roots = 0;
  for (const auto& s : spans) {
    if (s.parent_id.empty()) {
      ++roots;
      EXPECT_EQ(s.name, "request");
    }
  }
  EXPECT_EQ(roots, 8u);
}

// ---------------------------------------------------------------------------
// Exporters.

TEST(ExportTest, TraceJsonlEmitsOneLinePerSpan) {
  CollectingSink sink;
  Tracer tracer(&sink);
  {
    SpanHandle root = tracer.StartRoot("request");
    SpanHandle child = tracer.StartChild(&root, "plan");
    child.Annotate("quote", "a\"b\\c");
  }
  std::ostringstream out;
  WriteTraceJsonl(out, sink.spans());
  std::istringstream lines(out.str());
  std::string line;
  size_t n = 0;
  while (std::getline(lines, line)) {
    ++n;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
  EXPECT_EQ(n, 2u);
  EXPECT_NE(out.str().find("a\\\"b\\\\c"), std::string::npos);
}

TEST(ExportTest, PrometheusTextMatchesGoldenFile) {
  // A hand-built registry with fixed values: the exposition must be
  // byte-stable (sorted series, fixed formatting) across runs.
  MetricsRegistry registry;
  registry.counter("silkroute_requests_completed_total")->Add(5);
  registry
      .counter(LabeledName("silkroute_breaker_trips_total",
                           {{"table", "Orders"}}))
      ->Add(2);
  registry
      .counter(LabeledName("silkroute_breaker_trips_total",
                           {{"table", "PartSupp"}}))
      ->Add(1);
  // The federation's per-backend dimension: breaker series keyed by
  // backend instead of table, plus the wire-level client counters.
  registry
      .counter(LabeledName("silkroute_breaker_trips_total",
                           {{"backend", "east"}}))
      ->Add(1);
  registry
      .counter(LabeledName("silkroute_federation_failovers_total",
                           {{"backend", "east"}}))
      ->Add(2);
  registry
      .counter(LabeledName("silkroute_net_reconnects_total",
                           {{"backend", "east"}}))
      ->Add(3);
  registry
      .counter(LabeledName("silkroute_net_decode_errors_total",
                           {{"backend", "east"}}))
      ->Add(1);
  // The replica dimension (DESIGN.md §13): two-label series keyed
  // (backend, replica), plus the per-backend retry-budget counter.
  registry
      .gauge(LabeledName("silkroute_replica_in_flight",
                         {{"backend", "east"}, {"replica", "r0"}}))
      ->Set(2);
  registry
      .gauge(LabeledName("silkroute_replica_ewma_ms",
                         {{"backend", "east"}, {"replica", "r0"}}))
      ->Set(12);
  registry
      .counter(LabeledName("silkroute_replica_ejections_total",
                           {{"backend", "east"}, {"replica", "r1"}}))
      ->Add(1);
  registry
      .counter(LabeledName("silkroute_replica_hedges_fired_total",
                           {{"backend", "east"}, {"replica", "r1"}}))
      ->Add(4);
  registry
      .counter(LabeledName("silkroute_replica_hedges_won_total",
                           {{"backend", "east"}, {"replica", "r1"}}))
      ->Add(3);
  registry
      .counter(LabeledName("silkroute_replica_hedges_cancelled_total",
                           {{"backend", "east"}, {"replica", "r0"}}))
      ->Add(3);
  registry
      .counter(LabeledName("silkroute_replica_retry_budget_exhausted_total",
                           {{"backend", "east"}}))
      ->Add(2);
  registry.gauge("silkroute_pool_queue_depth")->Set(3);
  // The scrape-endpoint dimension (DESIGN.md §14): the EngineServer's
  // plain-named counters/gauge, plus the workload profile's live mirrors —
  // written through a real WorkloadProfile so the mirror path is the one
  // under test, not a hand-set imitation.
  registry.counter("silkroute_server_requests_total")->Add(7);
  registry.counter("silkroute_server_errors_total")->Add(1);
  registry.counter("silkroute_server_frames_in_total")->Add(9);
  registry.counter("silkroute_server_frames_out_total")->Add(21);
  registry.gauge("silkroute_server_connections")->Set(2);
  WorkloadProfile profile(0.3, &registry);
  profile.RecordQuery("select s from Supplier", 4.0, 2, 64);
  profile.RecordBind("select s from Supplier", 1.0);
  // The result-cache dimension (DESIGN.md §15): hit/miss/eviction/splice
  // counters and residency gauges, written through a real ResultCache so
  // the mirror path is the one under test. One insert, one hit, one miss,
  // two recorded splices; all byte values are deterministic (packed key
  // length + entry payload + fixed overhead).
  engine::ResultCache cache(engine::ResultCache::Options{
      /*budget_bytes=*/1 << 20, /*shards=*/1, &registry});
  engine::CacheEntry cache_entry;
  cache_entry.bytes = std::make_shared<const std::string>("<x/>");
  cache_entry.num_tuples = 1;
  const std::string cache_key = engine::ResultCache::FragmentKey(
      "select s from Supplier", {{"Supplier", 3}});
  cache.Insert(cache_key, std::move(cache_entry));
  ASSERT_NE(cache.Lookup(cache_key), nullptr);
  ASSERT_EQ(cache.Lookup(engine::ResultCache::FragmentKey(
                "select s from Supplier", {{"Supplier", 4}})),
            nullptr);
  cache.RecordSplices(2);
  Histogram* h = registry.histogram("silkroute_request_us");
  for (uint64_t v : {0u, 1u, 2u, 3u, 5u, 8u, 100u, 1000u, 4096u}) {
    h->Record(v);
  }

  std::ostringstream rendered;
  WritePrometheusText(rendered, registry.Snapshot());

  const std::string golden_path =
      std::string(SILK_TEST_SOURCE_DIR) + "/golden/prometheus.txt";
  if (std::getenv("SILK_REGEN_GOLDEN") != nullptr) {
    std::ofstream regen(golden_path);
    ASSERT_TRUE(regen.good()) << "cannot write golden file " << golden_path;
    regen << rendered.str();
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  std::ifstream golden_file(golden_path);
  ASSERT_TRUE(golden_file.good()) << "missing golden file " << golden_path;
  std::ostringstream golden;
  golden << golden_file.rdbuf();
  EXPECT_EQ(rendered.str(), golden.str())
      << "regenerate " << golden_path << " if the exposition format "
      << "changed intentionally";
}

TEST(ExportTest, TraceJsonlEscapesHostileAnnotations) {
  // Annotation values come from SQL text, error messages, and replica
  // names — none of which are guaranteed printable or valid UTF-8. The
  // JSONL export must neutralize all of it: standard escapes for the
  // common controls, \u00xx for the rest, and U+FFFD per invalid byte.
  CollectingSink sink;
  Tracer tracer(&sink);
  {
    SpanHandle root = tracer.StartRoot(std::string("req\x01uest"));
    root.Annotate("newline", "a\nb\rc\td");
    root.Annotate("invalid_utf8", std::string("x\x80y"));
    root.Annotate("overlong", std::string("\xC0\xAF"));  // overlong '/'
    root.Annotate("valid_utf8", "caf\xC3\xA9");
    root.Annotate("bell", std::string("ding\x07"));
  }
  std::ostringstream out;
  WriteTraceJsonl(out, sink.spans());
  const std::string text = out.str();
  EXPECT_NE(text.find("req\\u0001uest"), std::string::npos);
  EXPECT_NE(text.find("a\\nb\\rc\\td"), std::string::npos);
  EXPECT_NE(text.find("x\\ufffdy"), std::string::npos);
  EXPECT_NE(text.find("\\ufffd\\ufffd"), std::string::npos);
  EXPECT_NE(text.find("caf\xC3\xA9"), std::string::npos);  // é passes through
  EXPECT_NE(text.find("ding\\u0007"), std::string::npos);
  // No raw control byte survives into the stream (newlines only separate
  // the JSONL records themselves).
  for (char c : text) {
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20)
        << "raw control byte " << static_cast<int>(c) << " in export";
  }
}

TEST(MetricsTest, LabelValuesEscapeHostileCharacters) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  // Both newline flavors collapse to the two-character sequence \n — a
  // value must never break the one-line-per-sample exposition format.
  EXPECT_EQ(EscapeLabelValue("a\nb"), "a\\nb");
  EXPECT_EQ(EscapeLabelValue("a\r\nb"), "a\\n\\nb");
  EXPECT_EQ(LabeledName("silkroute_test_total", {{"path", "a\\b\"c\nd"}}),
            "silkroute_test_total{path=\"a\\\\b\\\"c\\nd\"}");
}

// ---------------------------------------------------------------------------
// Observed-cost workload profile (DESIGN.md §14).

TEST(ProfileTest, NormalizeSqlCollapsesWhitespace) {
  EXPECT_EQ(NormalizeSql("  select  a\n from\t b  "), "select a from b");
  EXPECT_EQ(NormalizeSql("select a from b"),
            NormalizeSql("select a\n  from b"));
  EXPECT_EQ(NormalizeSql(""), "");
  EXPECT_EQ(NormalizeSql(" \t\n "), "");
}

TEST(ProfileTest, RecordAndLookupTrackEwmaTotalsAndHistogram) {
  WorkloadProfile profile(0.5);
  profile.RecordQuery("select 1", 100.0, 10, 1000);
  auto p = profile.Lookup("  select    1 ");  // formatting must not split keys
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->query.ewma_ms, 100.0);  // first sample seeds the EWMA
  EXPECT_DOUBLE_EQ(p->rows_ewma, 10.0);
  EXPECT_DOUBLE_EQ(p->wire_bytes_ewma, 1000.0);

  profile.RecordQuery("select 1", 200.0, 20, 2000);
  p = profile.Lookup("select 1");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->query.ewma_ms, 150.0);  // 0.5*200 + 0.5*100
  EXPECT_DOUBLE_EQ(p->query.total_ms, 300.0);
  EXPECT_EQ(p->query.count, 2u);
  EXPECT_DOUBLE_EQ(p->rows_ewma, 15.0);

  profile.RecordBind("select 1", 10.0);
  profile.RecordTag("select 1", 5.0);
  p = profile.Lookup("select 1");
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(p->bind.ewma_ms, 10.0);
  EXPECT_DOUBLE_EQ(p->tag.ewma_ms, 5.0);

  uint64_t samples = 0;
  for (uint64_t bucket : p->query.hist) samples += bucket;
  EXPECT_EQ(samples, 2u);
  EXPECT_EQ(profile.size(), 1u);
  EXPECT_EQ(profile.records(), 4u);
  EXPECT_FALSE(profile.Lookup("select 2").has_value());
}

TEST(ProfileTest, JsonRoundTripPreservesEverything) {
  WorkloadProfile profile(0.3);
  profile.RecordQuery("select a from \"weird\\table\"", 12.5, 7, 321);
  profile.RecordQuery("select a from \"weird\\table\"", 14.5, 9, 345);
  profile.RecordBind("select a from \"weird\\table\"", 1.25);
  profile.RecordQuery("select b from t2", 0.0, 0, 0);

  WorkloadProfile loaded(0.3);
  ASSERT_TRUE(loaded.FromJson(profile.ToJson()).ok());
  EXPECT_EQ(loaded.size(), profile.size());
  EXPECT_EQ(loaded.records(), profile.records());
  auto original = profile.Lookup("select a from \"weird\\table\"");
  auto copy = loaded.Lookup("select a from \"weird\\table\"");
  ASSERT_TRUE(original.has_value());
  ASSERT_TRUE(copy.has_value());
  EXPECT_DOUBLE_EQ(copy->query.ewma_ms, original->query.ewma_ms);
  EXPECT_DOUBLE_EQ(copy->query.total_ms, original->query.total_ms);
  EXPECT_EQ(copy->query.count, original->query.count);
  EXPECT_EQ(copy->query.hist, original->query.hist);
  EXPECT_DOUBLE_EQ(copy->bind.ewma_ms, original->bind.ewma_ms);
  EXPECT_DOUBLE_EQ(copy->rows_ewma, original->rows_ewma);
  EXPECT_DOUBLE_EQ(copy->wire_bytes_ewma, original->wire_bytes_ewma);
  // And the round-trip is a fixpoint: serialize-load-serialize is stable.
  EXPECT_EQ(loaded.ToJson(), profile.ToJson());
}

TEST(ProfileTest, MalformedJsonRejectedWithoutClobbering) {
  WorkloadProfile profile;
  profile.RecordQuery("select 1", 5.0, 1, 1);
  const std::string cases[] = {
      "",
      "not json",
      "[1,2,3]",
      "{\"version\":99,\"records\":0,\"components\":[]}",
      "{\"records\":0,\"components\":[]}",
      "{\"version\":1,\"records\":0}",
      "{\"version\":1,\"records\":-3,\"components\":[]}",
      "{\"version\":1,\"records\":0,\"components\":[42]}",
      "{\"version\":1,\"records\":0,\"components\":[{\"sql\":7}]}",
      "{\"version\":1,\"records\":0,\"components\":[]}trailing",
  };
  for (const std::string& bad : cases) {
    Status status = profile.FromJson(bad);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << bad;
    // A rejected load never half-applies: the old contents survive.
    EXPECT_EQ(profile.size(), 1u) << bad;
    EXPECT_TRUE(profile.Lookup("select 1").has_value()) << bad;
  }
}

TEST(ProfileTest, SaveLoadRoundTripAndMissingFile) {
  WorkloadProfile profile;
  profile.RecordQuery("select 1", 5.0, 2, 64);
  const std::string path = "obs_test_profile_tmp.json";
  ASSERT_TRUE(profile.Save(path).ok());
  WorkloadProfile loaded;
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.ToJson(), profile.ToJson());
  std::remove(path.c_str());
  EXPECT_EQ(loaded.Load("no_such_profile.json").code(),
            StatusCode::kNotFound);
}

TEST(ProfileTest, RegistryMirrorsRecordsAndKeys) {
  MetricsRegistry registry;
  WorkloadProfile profile(0.3, &registry);
  profile.RecordQuery("select 1", 5.0, 1, 1);
  profile.RecordQuery("select 2", 5.0, 1, 1);
  profile.RecordBind("select 1", 1.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("silkroute_profile_records_total"), 3u);
  EXPECT_EQ(snapshot.gauges.at("silkroute_profile_keys"), 2);
}

// ---------------------------------------------------------------------------
// MeasuredCostOracle: the overlay that feeds observation back to genPlan.

/// Fixed-answer synthetic oracle for overlay tests.
class FixedOracle : public engine::CostOracle {
 public:
  Result<engine::QueryEstimate> EstimateSql(std::string_view) override {
    ++calls;
    engine::QueryEstimate est;
    est.rows = 1000;
    est.cost = 42;
    est.width_bytes = 8;
    return est;
  }
  int calls = 0;
};

TEST(MeasuredOracleTest, PassesThroughOnMissAndNullProfile) {
  FixedOracle synthetic;
  engine::MeasuredCostOracle null_profile(&synthetic, nullptr);
  auto est = null_profile.EstimateSql("select 1");
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost, 42.0);
  EXPECT_EQ(null_profile.overlay_hits(), 0u);

  WorkloadProfile profile;
  engine::MeasuredCostOracle empty(&synthetic, &profile);
  est = empty.EstimateSql("select 1");
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost, 42.0);
  EXPECT_DOUBLE_EQ(est->rows, 1000.0);
  EXPECT_EQ(empty.overlay_hits(), 0u);
}

TEST(MeasuredOracleTest, OverlayPricesByMeasurementInSyntheticUnits) {
  FixedOracle synthetic;
  WorkloadProfile profile;
  profile.RecordQuery("select 1", 100.0, 50, 500);
  profile.RecordBind("select 1", 20.0);
  profile.RecordTag("select 1", 5.0);
  engine::MeasuredCostOracle oracle(&synthetic, &profile);
  auto est = oracle.EstimateSql("select  1");  // normalized lookup
  ASSERT_TRUE(est.ok());
  // cost = (query + bind + tag) ms * 1000 units/ms; cardinality and
  // data_size() come from observation, not the synthetic model.
  EXPECT_DOUBLE_EQ(est->cost, 125000.0);
  EXPECT_DOUBLE_EQ(est->rows, 50.0);
  EXPECT_DOUBLE_EQ(est->data_size(), 500.0);
  EXPECT_EQ(oracle.overlay_hits(), 1u);
  // The synthetic oracle is still consulted (request accounting stays
  // comparable with unprofiled runs).
  EXPECT_EQ(synthetic.calls, 1);
}

TEST(MeasuredOracleTest, MinSamplesGatesTheOverlay) {
  FixedOracle synthetic;
  WorkloadProfile profile;
  profile.RecordQuery("select 1", 100.0, 50, 500);
  engine::MeasuredCostOracle::Options options;
  options.min_samples = 2;
  engine::MeasuredCostOracle oracle(&synthetic, &profile, options);
  auto est = oracle.EstimateSql("select 1");
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost, 42.0);  // one sample: synthetic stands
  EXPECT_EQ(oracle.overlay_hits(), 0u);

  profile.RecordQuery("select 1", 100.0, 50, 500);
  est = oracle.EstimateSql("select 1");
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->cost, 100000.0);
  EXPECT_EQ(oracle.overlay_hits(), 1u);
}

TEST(ExportTest, StatsTableListsEverySeries) {
  MetricsRegistry registry;
  registry.counter("silkroute_plans_total")->Add(4);
  registry.gauge("silkroute_pool_queue_depth")->Set(1);
  registry.histogram("silkroute_request_us")->Record(250);
  std::ostringstream out;
  WriteStatsTable(out, registry.Snapshot());
  EXPECT_NE(out.str().find("silkroute_plans_total"), std::string::npos);
  EXPECT_NE(out.str().find("silkroute_pool_queue_depth"), std::string::npos);
  EXPECT_NE(out.str().find("silkroute_request_us"), std::string::npos);
}

}  // namespace
}  // namespace silkroute::obs
