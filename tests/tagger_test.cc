#include "silkroute/tagger.h"

#include <gtest/gtest.h>

#include <sstream>

#include "engine/executor.h"
#include "silkroute/partition.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;
using testutil::MustBuildTree;

class TaggerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTinyTpch().release();
    tree_ = new ViewTree(MustBuildTree(Query1Rxl(), db_->catalog()));
  }
  static void TearDownTestSuite() {
    delete tree_;
    delete db_;
    tree_ = nullptr;
    db_ = nullptr;
  }

  /// Runs the full generate/execute/tag pipeline for one plan; returns the
  /// XML and exposes the tagger stats through `stats`.
  std::string RunPlan(uint64_t mask, SqlGenStyle style, bool reduce,
                      TaggerStats* stats) {
    auto plan = Partition::FromMask(*tree_, mask);
    EXPECT_TRUE(plan.ok());
    SqlGenerator gen(tree_, style, reduce);
    auto specs = gen.GeneratePlan(*plan);
    EXPECT_TRUE(specs.ok()) << specs.status();

    std::vector<std::unique_ptr<engine::TupleStream>> streams;
    for (const auto& spec : *specs) {
      engine::QueryExecutor exec(db_);
      auto rel = exec.ExecuteSql(spec.sql);
      EXPECT_TRUE(rel.ok()) << spec.sql << "\n" << rel.status();
      streams.push_back(
          std::make_unique<engine::TupleStream>(std::move(rel).value()));
    }
    std::ostringstream out;
    xml::XmlWriter writer(&out);
    Tagger tagger(tree_, &writer, Tagger::Options{"suppliers"});
    std::vector<Tagger::StreamInput> inputs;
    for (size_t i = 0; i < specs->size(); ++i) {
      inputs.push_back({&(*specs)[i], streams[i].get()});
    }
    Status s = tagger.Run(std::move(inputs));
    EXPECT_TRUE(s.ok()) << s;
    EXPECT_TRUE(writer.Finish().ok());
    if (stats != nullptr) *stats = tagger.stats();
    return out.str();
  }

  static Database* db_;
  static ViewTree* tree_;
};

Database* TaggerTest::db_ = nullptr;
ViewTree* TaggerTest::tree_ = nullptr;

TEST_F(TaggerTest, EmitsWellFormedXml) {
  TaggerStats stats;
  std::string xml = RunPlan(0, SqlGenStyle::kOuterJoin, false, &stats);
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->name, "suppliers");
  EXPECT_GT((*doc)->NumChildren(), 0u);
}

TEST_F(TaggerTest, NoForcedAncestorOpens) {
  for (uint64_t mask : {uint64_t{0}, uint64_t{511}, uint64_t{0x1E8}}) {
    TaggerStats stats;
    RunPlan(mask, SqlGenStyle::kOuterJoin, true, &stats);
    EXPECT_EQ(stats.forced_ancestor_opens, 0u) << mask;
  }
}

TEST_F(TaggerTest, BufferedInstancesBoundedByViewTreeSize) {
  // The constant-memory property (paper Sec. 3.3): buffering depends only
  // on the view tree (one tuple per stream plus one captured instance per
  // node), never on the database size.
  for (uint64_t mask : {uint64_t{0}, uint64_t{511}, uint64_t{0x1E8}}) {
    TaggerStats stats;
    RunPlan(mask, SqlGenStyle::kOuterJoin, false, &stats);
    EXPECT_GE(stats.peak_buffered_tuples, 1u) << mask;
    EXPECT_LE(stats.peak_buffered_tuples, tree_->num_nodes()) << mask;
  }
}

TEST_F(TaggerTest, MaxDepthMatchesViewTree) {
  TaggerStats stats;
  RunPlan(511, SqlGenStyle::kOuterJoin, true, &stats);
  // suppliers wrapper is not on the tagger's stack; depth = tree depth.
  EXPECT_EQ(stats.max_open_depth, 4u);
}

TEST_F(TaggerTest, OuterJoinPlansSkipRepeatedParents) {
  TaggerStats stats;
  RunPlan(511, SqlGenStyle::kOuterJoin, false, &stats);
  EXPECT_GT(stats.duplicates_skipped, 0u);
}

TEST_F(TaggerTest, InstanceCountIndependentOfPlan) {
  TaggerStats a, b, c;
  RunPlan(0, SqlGenStyle::kOuterJoin, false, &a);
  RunPlan(511, SqlGenStyle::kOuterUnion, true, &b);
  RunPlan(0x35, SqlGenStyle::kOuterJoin, true, &c);
  EXPECT_EQ(a.instances_emitted, b.instances_emitted);
  EXPECT_EQ(a.instances_emitted, c.instances_emitted);
}

TEST_F(TaggerTest, SupplierContentsCompleteAndOrdered) {
  std::string xml = RunPlan(0x1E8, SqlGenStyle::kOuterJoin, true, nullptr);
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  auto suppliers = (*doc)->Children("supplier");
  auto table = db_->GetTable("Supplier");
  ASSERT_TRUE(table.ok());
  ASSERT_EQ(suppliers.size(), (*table)->num_rows());
  for (const auto* s : suppliers) {
    ASSERT_GE(s->NumChildren(), 3u);
    EXPECT_EQ(s->children[0]->name, "name");
    EXPECT_EQ(s->children[1]->name, "nation");
    EXPECT_EQ(s->children[2]->name, "region");
    for (size_t i = 3; i < s->NumChildren(); ++i) {
      EXPECT_EQ(s->children[i]->name, "part");
    }
    EXPECT_FALSE(s->children[0]->text.empty());
  }
}

TEST_F(TaggerTest, SuppliersSortedByKey) {
  // The merged document lists suppliers in key order (the global sort key
  // starts with v1_1 = suppkey). Supplier names embed the key.
  std::string xml = RunPlan(0, SqlGenStyle::kOuterJoin, false, nullptr);
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  auto suppliers = (*doc)->Children("supplier");
  std::string prev;
  for (const auto* s : suppliers) {
    std::string name = s->FirstChild("name")->text;
    EXPECT_LT(prev, name);
    prev = name;
  }
}

TEST_F(TaggerTest, RowsConsumedMatchesStreamSizes) {
  TaggerStats stats;
  RunPlan(0, SqlGenStyle::kOuterJoin, false, &stats);
  EXPECT_GT(stats.rows_consumed, 0u);
}

TEST_F(TaggerTest, WithoutDocumentElementEmitsForest) {
  // A single-supplier view without the wrapper: root element instances
  // follow each other; the reader then rejects it as multi-root, which is
  // exactly the forest semantics — so wrap a view whose root is unique.
  auto tree = MustBuildTree(
      "from Region $r where $r.regionkey = 0 construct "
      "<regions><region>$r.name</region></regions>",
      db_->catalog());
  SqlGenerator gen(&tree, SqlGenStyle::kOuterJoin, false);
  auto specs = gen.GeneratePlan(Partition::Unified(tree));
  ASSERT_TRUE(specs.ok());
  engine::QueryExecutor exec(db_);
  auto rel = exec.ExecuteSql((*specs)[0].sql);
  ASSERT_TRUE(rel.ok());
  engine::TupleStream stream(std::move(rel).value());
  std::ostringstream out;
  xml::XmlWriter writer(&out);
  Tagger tagger(&tree, &writer, Tagger::Options{});
  ASSERT_TRUE(tagger.Run({{&(*specs)[0], &stream}}).ok());
  ASSERT_TRUE(writer.Finish().ok());
  auto doc = xml::ParseXml(out.str());
  ASSERT_TRUE(doc.ok()) << out.str();
  EXPECT_EQ((*doc)->name, "regions");
  EXPECT_EQ((*doc)->FirstChild("region")->text, "AFRICA");
}

}  // namespace
}  // namespace silkroute::core
