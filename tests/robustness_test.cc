// Edge-of-domain tests for the full pipeline: empty databases, markup
// characters in data, deep and wide view trees, zero-match subviews,
// publisher option combinations, timeout propagation, and — with the
// fault-injecting source — retry, degradation, and budget behaviour.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/timer.h"
#include "engine/fault_injection.h"
#include "engine/resilient_executor.h"
#include "silkroute/partition.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "sql/ddl.h"
#include "tests/test_util.h"
#include "tpch/schema.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

std::string PublishOrDie(Publisher* publisher, std::string_view rxl,
                         const PublishOptions& options) {
  std::ostringstream out;
  auto result = publisher->Publish(rxl, options, &out);
  EXPECT_TRUE(result.ok()) << result.status();
  return out.str();
}

TEST(RobustnessTest, EmptyDatabaseYieldsEmptyDocument) {
  Database db;
  ASSERT_TRUE(tpch::CreateTpchSchema(&db).ok());  // schema, no rows
  Publisher publisher(&db);
  for (PlanStrategy strategy :
       {PlanStrategy::kFullyPartitioned, PlanStrategy::kUnified,
        PlanStrategy::kGreedy}) {
    PublishOptions options;
    options.strategy = strategy;
    options.document_element = "suppliers";
    std::string xml = PublishOrDie(&publisher, Query1Rxl(), options);
    auto doc = xml::ParseXml(xml);
    ASSERT_TRUE(doc.ok()) << xml;
    EXPECT_EQ((*doc)->NumChildren(), 0u);
  }
}

TEST(RobustnessTest, MarkupCharactersInDataAreEscaped) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE T (k INT PRIMARY KEY, v TEXT)", &db)
                  .ok());
  ASSERT_TRUE(db.Insert("T", Tuple{Value::Int64(1),
                                   Value::String("<a> & \"b\" 'c'")})
                  .ok());
  ASSERT_TRUE(
      db.Insert("T", Tuple{Value::Int64(2), Value::String("]]></done>")})
          .ok());
  Publisher publisher(&db);
  PublishOptions options;
  options.document_element = "doc";
  std::string xml = PublishOrDie(
      &publisher, "from T $t construct <row>$t.v</row>", options);
  // The raw markup must not appear unescaped...
  EXPECT_EQ(xml.find("<a> &"), std::string::npos);
  EXPECT_EQ(xml.find("</done>"), std::string::npos);
  // ...and it must round-trip through the reader.
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << xml;
  auto rows = (*doc)->Children("row");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->text, "<a> & \"b\" 'c'");
  EXPECT_EQ(rows[1]->text, "]]></done>");
}

TEST(RobustnessTest, DeepChainView) {
  // A 10-level chain of same-scope elements: plans and reduction must cope
  // with maximal depth.
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE T (k INT PRIMARY KEY, v TEXT)", &db)
                  .ok());
  ASSERT_TRUE(
      db.Insert("T", Tuple{Value::Int64(1), Value::String("x")}).ok());
  std::string rxl = "from T $t construct ";
  for (int i = 0; i < 10; ++i) rxl += "<d" + std::to_string(i) + ">";
  rxl += "$t.v";
  for (int i = 9; i >= 0; --i) rxl += "</d" + std::to_string(i) + ">";

  Publisher publisher(&db);
  auto tree = publisher.BuildViewTree(rxl);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->MaxLevel(), 10);
  std::string reference;
  for (uint64_t mask : {uint64_t{0}, uint64_t{0x1FF}, uint64_t{0xAA}}) {
    PublishOptions options;
    options.document_element = "doc";
    std::ostringstream out;
    auto metrics = publisher.ExecutePlan(*tree, mask, options, &out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    if (reference.empty()) {
      reference = out.str();
      EXPECT_NE(reference.find("<d9>x</d9>"), std::string::npos);
    } else {
      EXPECT_EQ(out.str(), reference);
    }
  }
}

TEST(RobustnessTest, WideFanoutView) {
  // 20 parallel blocks under one root: exercises sibling-branch unions and
  // label ordering past single digits.
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE T (k INT PRIMARY KEY, v TEXT);"
                  "CREATE TABLE U (k INT PRIMARY KEY, w TEXT, tk INT,"
                  " FOREIGN KEY (tk) REFERENCES T(k))",
                  &db)
                  .ok());
  ASSERT_TRUE(
      db.Insert("T", Tuple{Value::Int64(1), Value::String("root")}).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Insert("U", Tuple{Value::Int64(i), Value::String("u"),
                                     Value::Int64(1)})
                    .ok());
  }
  std::string rxl = "from T $t construct <root>";
  for (int i = 0; i < 20; ++i) {
    rxl += "{ from U $u" + std::to_string(i) + " where $t.k = $u" +
           std::to_string(i) + ".tk construct <c" + std::to_string(i) +
           ">$u" + std::to_string(i) + ".w</c" + std::to_string(i) + "> }";
  }
  rxl += "</root>";
  Database* dbp = &db;
  Publisher publisher(dbp);
  auto tree = publisher.BuildViewTree(rxl);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->num_nodes(), 21u);
  PublishOptions options;
  options.document_element = "doc";
  std::string unified, partitioned;
  {
    options.strategy = PlanStrategy::kUnified;
    unified = PublishOrDie(&publisher, rxl, options);
  }
  {
    options.strategy = PlanStrategy::kFullyPartitioned;
    partitioned = PublishOrDie(&publisher, rxl, options);
  }
  EXPECT_EQ(unified, partitioned);
  auto doc = xml::ParseXml(unified);
  ASSERT_TRUE(doc.ok());
  const xml::XmlNode* root = (*doc)->FirstChild("root");
  ASSERT_NE(root, nullptr);
  // Children arrive in template (label) order: all c0 before any c1, etc.
  EXPECT_EQ(root->NumChildren(), 100u);  // 20 branches x 5 rows
  int last_branch = -1;
  for (const auto& child : root->children) {
    int branch = std::atoi(child->name.c_str() + 1);
    EXPECT_GE(branch, last_branch);
    last_branch = branch;
  }
}

TEST(RobustnessTest, SubviewWithNoMatchesIsEmpty) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());
  PublishOptions options;
  options.document_element = "result";
  std::ostringstream out;
  auto result = publisher.PublishSubview(
      Query1Rxl(), "/supplier[name='no such supplier']", options, &out);
  ASSERT_TRUE(result.ok()) << result.status();
  auto doc = xml::ParseXml(out.str());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->NumChildren(), 0u);
}

TEST(RobustnessTest, ExecutePlanRejectsOutOfRangeMask) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  ASSERT_TRUE(tree.ok());
  PublishOptions options;
  std::ostringstream out;
  EXPECT_EQ(publisher.ExecutePlan(*tree, uint64_t{1} << 60, options, &out)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(RobustnessTest, PublisherTimeoutReportsTimedOut) {
  auto db = MakeTinyTpch(0.005);
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  ASSERT_TRUE(tree.ok());
  PublishOptions options;
  options.query_timeout_ms = 1e-6;
  std::ostringstream out;
  auto metrics =
      publisher.ExecutePlan(*tree, Partition::Unified(*tree).mask(),
                            options, &out);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_TRUE(metrics->timed_out);
}

TEST(RobustnessTest, DistinctSelectsProduceSameDocument) {
  auto db = MakeTinyTpch(0.002);
  Publisher publisher(db.get());
  PublishOptions plain;
  plain.document_element = "suppliers";
  PublishOptions distinct = plain;
  distinct.distinct_selects = true;
  std::string a = PublishOrDie(&publisher, Query1Rxl(), plain);
  std::string b = PublishOrDie(&publisher, Query1Rxl(), distinct);
  EXPECT_EQ(a, b);
}

TEST(RobustnessTest, CollectSqlOffOmitsStatements) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());
  PublishOptions options;
  options.collect_sql = false;
  options.document_element = "suppliers";
  std::ostringstream out;
  auto result = publisher.Publish(Query1Rxl(), options, &out);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->metrics.sql.empty());
}

TEST(RobustnessTest, NumericValuesRenderCanonically) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE N (k INT PRIMARY KEY, d DOUBLE)", &db)
                  .ok());
  ASSERT_TRUE(
      db.Insert("N", Tuple{Value::Int64(1), Value::Double(2.5)}).ok());
  ASSERT_TRUE(
      db.Insert("N", Tuple{Value::Int64(2), Value::Double(3.0)}).ok());
  Publisher publisher(&db);
  PublishOptions options;
  options.document_element = "doc";
  std::string xml = PublishOrDie(
      &publisher, "from N $n construct <v>$n.d</v>", options);
  EXPECT_NE(xml.find("<v>2.5</v>"), std::string::npos) << xml;
  EXPECT_NE(xml.find("<v>3.0</v>"), std::string::npos) << xml;
}

// ---------------------------------------------------------------------------
// Fault-tolerant execution: a two-table view published through a
// FaultInjectingExecutor. The healthy document is the reference; every
// recovery path must reproduce it byte-identically.

std::unique_ptr<Database> MakeTwoTableDb() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE T (k INT PRIMARY KEY, v TEXT);"
                  "CREATE TABLE U (k INT PRIMARY KEY, w TEXT, tk INT,"
                  " FOREIGN KEY (tk) REFERENCES T(k))",
                  db.get())
                  .ok());
  EXPECT_TRUE(
      db->Insert("T", Tuple{Value::Int64(1), Value::String("a")}).ok());
  EXPECT_TRUE(
      db->Insert("T", Tuple{Value::Int64(2), Value::String("b")}).ok());
  EXPECT_TRUE(db->Insert("U", Tuple{Value::Int64(10), Value::String("x"),
                                    Value::Int64(1)})
                  .ok());
  EXPECT_TRUE(db->Insert("U", Tuple{Value::Int64(11), Value::String("y"),
                                    Value::Int64(1)})
                  .ok());
  EXPECT_TRUE(db->Insert("U", Tuple{Value::Int64(12), Value::String("z"),
                                    Value::Int64(2)})
                  .ok());
  return db;
}

constexpr char kTwoTableRxl[] =
    "from T $t construct <t><v>$t.v</v>"
    "{ from U $u where $t.k = $u.tk construct <u>$u.w</u> }</t>";

/// Publishes through a fault policy; `retry` sleeps are recorded, never
/// slept, so tests stay fast.
struct FaultyPublishOutcome {
  Result<PublishResult> result = Status::Internal("publish not run");
  std::string xml;
  engine::FaultStats fault_stats;
};

FaultyPublishOutcome PublishWithFaults(const Database* db,
                                       const engine::FaultPolicy& policy,
                                       PublishOptions options) {
  engine::DatabaseExecutor db_executor(db);
  engine::FaultInjectingExecutor faulty(&db_executor, policy);
  faulty.set_sleep_fn([](double) {});
  options.executor = &faulty;
  options.retry.sleep_fn = [](double) {};
  Publisher publisher(db);
  FaultyPublishOutcome outcome;
  std::ostringstream out;
  outcome.result = publisher.Publish(kTwoTableRxl, options, &out);
  outcome.xml = out.str();
  outcome.fault_stats = faulty.stats();
  return outcome;
}

std::string HealthyReference(const Database* db, PlanStrategy strategy) {
  Publisher publisher(db);
  PublishOptions options;
  options.strategy = strategy;
  options.document_element = "doc";
  std::ostringstream out;
  auto result = publisher.Publish(kTwoTableRxl, options, &out);
  EXPECT_TRUE(result.ok()) << result.status();
  return out.str();
}

TEST(FaultToleranceTest, TransientUnavailableIsRetriedToIdenticalXml) {
  auto db = MakeTwoTableDb();
  std::string reference = HealthyReference(db.get(), PlanStrategy::kUnified);

  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.fail = true;
  rule.times = 1;  // transient: first execution fails, the retry succeeds
  policy.rules.push_back(rule);

  PublishOptions options;
  options.strategy = PlanStrategy::kUnified;
  options.document_element = "doc";
  auto outcome = PublishWithFaults(db.get(), policy, options);
  ASSERT_TRUE(outcome.result.ok()) << outcome.result.status();
  EXPECT_EQ(outcome.xml, reference);
  const PlanMetrics& metrics = outcome.result->metrics;
  EXPECT_EQ(metrics.retries, 1u);
  EXPECT_EQ(metrics.attempts, 2u);  // one component query, one retry
  EXPECT_EQ(metrics.degraded_components, 0u);
  EXPECT_EQ(outcome.fault_stats.injected_failures, 1);
}

TEST(FaultToleranceTest, PermanentComponentFailureDegradesToIdenticalXml) {
  auto db = MakeTwoTableDb();
  std::string reference = HealthyReference(db.get(), PlanStrategy::kUnified);

  // Exactly one component query fails permanently: the unified query
  // (arrival index 0). Its degraded replacements get fresh indexes and
  // succeed.
  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.fail = true;
  rule.query_index = 0;
  policy.rules.push_back(rule);

  PublishOptions options;
  options.strategy = PlanStrategy::kUnified;
  options.document_element = "doc";
  options.retry.max_attempts = 2;
  auto outcome = PublishWithFaults(db.get(), policy, options);
  ASSERT_TRUE(outcome.result.ok()) << outcome.result.status();
  EXPECT_EQ(outcome.xml, reference);
  const PlanMetrics& metrics = outcome.result->metrics;
  EXPECT_GE(metrics.degraded_components, 1u);
  EXPECT_TRUE(metrics.failed_nodes.empty());
  ASSERT_FALSE(metrics.exec_report.queries.empty());
  // Per-query attempt counts: the doomed unified query used all its
  // attempts; every degraded replacement succeeded first try.
  EXPECT_EQ(metrics.exec_report.queries[0].attempts, 2);
  EXPECT_EQ(metrics.exec_report.queries[0].final_status.code(),
            StatusCode::kUnavailable);
  for (size_t i = 1; i < metrics.exec_report.queries.size(); ++i) {
    EXPECT_EQ(metrics.exec_report.queries[i].attempts, 1);
  }
  EXPECT_GT(metrics.num_streams, 1u);
}

TEST(FaultToleranceTest, StrictModeFailsFastWithUnavailable) {
  auto db = MakeTwoTableDb();
  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.fail = true;
  rule.query_index = 0;
  policy.rules.push_back(rule);

  PublishOptions options;
  options.strategy = PlanStrategy::kUnified;
  options.document_element = "doc";
  options.strict = true;
  auto outcome = PublishWithFaults(db.get(), policy, options);
  ASSERT_FALSE(outcome.result.ok());
  EXPECT_EQ(outcome.result.status().code(), StatusCode::kUnavailable);
  // Fail-fast means exactly one attempt, no degradation.
  EXPECT_EQ(outcome.fault_stats.executions, 1);
}

TEST(FaultToleranceTest, TruncatedStreamIsDetectedAndRetried) {
  auto db = MakeTwoTableDb();
  std::string reference = HealthyReference(db.get(), PlanStrategy::kUnified);

  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.truncate_after_rows = 1;  // connection drops mid-stream, once
  rule.times = 1;
  policy.rules.push_back(rule);

  PublishOptions options;
  options.strategy = PlanStrategy::kUnified;
  options.document_element = "doc";
  auto outcome = PublishWithFaults(db.get(), policy, options);
  ASSERT_TRUE(outcome.result.ok()) << outcome.result.status();
  // Detection, not silent partial data: the truncated transfer surfaced as
  // a retryable error and the retry rebuilt the full document.
  EXPECT_EQ(outcome.xml, reference);
  EXPECT_EQ(outcome.fault_stats.truncated_streams, 1);
  EXPECT_EQ(outcome.result->metrics.retries, 1u);
}

TEST(FaultToleranceTest, TruncationIsNeverSilent) {
  auto db = MakeTwoTableDb();
  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.truncate_after_rows = 1;  // every transfer drops mid-stream
  policy.rules.push_back(rule);

  PublishOptions options;
  options.strategy = PlanStrategy::kUnified;
  options.document_element = "doc";
  options.strict = true;
  auto outcome = PublishWithFaults(db.get(), policy, options);
  ASSERT_FALSE(outcome.result.ok());
  EXPECT_EQ(outcome.result.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(outcome.result.status().message().find("truncated"),
            std::string::npos)
      << outcome.result.status();
}

TEST(FaultToleranceTest, RetryBudgetExhaustionReturnsResourceExhausted) {
  auto db = MakeTwoTableDb();
  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.fail = true;  // every query, every time
  policy.rules.push_back(rule);

  PublishOptions options;
  options.strategy = PlanStrategy::kUnified;
  options.document_element = "doc";
  options.retry.max_attempts = 5;
  options.retry.retry_budget = 1;
  auto outcome = PublishWithFaults(db.get(), policy, options);
  ASSERT_FALSE(outcome.result.ok());
  EXPECT_EQ(outcome.result.status().code(), StatusCode::kResourceExhausted);
}

TEST(FaultToleranceTest, FailedLeafNodeIsSkippedBestEffort) {
  auto db = MakeTwoTableDb();
  // Only queries touching U fail — permanently. At the fully-partitioned
  // limit the U node cannot be recovered; the document is published
  // best-effort without its instances and the node is reported.
  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.fail = true;
  rule.table = "U";
  policy.rules.push_back(rule);

  PublishOptions options;
  options.strategy = PlanStrategy::kFullyPartitioned;
  options.document_element = "doc";
  options.retry.max_attempts = 2;
  auto outcome = PublishWithFaults(db.get(), policy, options);
  ASSERT_TRUE(outcome.result.ok()) << outcome.result.status();
  const PlanMetrics& metrics = outcome.result->metrics;
  ASSERT_EQ(metrics.failed_nodes.size(), 1u);
  auto doc = xml::ParseXml(outcome.xml);
  ASSERT_TRUE(doc.ok()) << outcome.xml;
  auto ts = (*doc)->Children("t");
  ASSERT_EQ(ts.size(), 2u);
  for (const auto* t : ts) {
    EXPECT_EQ(t->Children("v").size(), 1u);
    EXPECT_TRUE(t->Children("u").empty());
  }
}

TEST(FaultToleranceTest, InjectedLatencyIsChargedDeterministically) {
  auto db = MakeTwoTableDb();
  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.latency_ms = 3;
  rule.per_row_delay_ms = 1;  // trickling stream
  policy.rules.push_back(rule);

  engine::DatabaseExecutor db_executor(db.get());
  engine::FaultInjectingExecutor faulty(&db_executor, policy);
  double slept = 0;
  faulty.set_sleep_fn([&](double ms) { slept += ms; });
  auto rel = faulty.ExecuteSql("SELECT k FROM T ORDER BY k");
  ASSERT_TRUE(rel.ok()) << rel.status();
  EXPECT_EQ(rel->rows.size(), 2u);
  EXPECT_DOUBLE_EQ(slept, 3 + 2 * 1);  // fixed + per-row trickle
  EXPECT_DOUBLE_EQ(faulty.stats().injected_latency_ms, slept);
}

// ---------------------------------------------------------------------------
// Resilient-executor unit behaviour, against a scriptable fake source.

class FakeSource : public engine::SqlExecutor {
 public:
  explicit FakeSource(std::vector<Status> script)
      : script_(std::move(script)) {}

  Result<engine::Relation> ExecuteSql(std::string_view sql) override {
    ++calls_;
    if (script_.empty()) return engine::Relation{};
    Status next = script_.front();
    script_.erase(script_.begin());
    if (!next.ok()) return next;
    return engine::Relation{};
  }
  void set_timeout_ms(double) override {}
  int calls() const { return calls_; }

 private:
  std::vector<Status> script_;
  int calls_ = 0;
};

engine::RetryOptions FastRetry(int max_attempts, int budget) {
  engine::RetryOptions retry;
  retry.max_attempts = max_attempts;
  retry.retry_budget = budget;
  retry.sleep_fn = [](double) {};
  return retry;
}

TEST(ResilientExecutorTest, TimeoutIsRetriedExactlyOnce) {
  {
    // One timeout: the single permitted retry recovers.
    FakeSource source({Status::Timeout("t"), Status::OK()});
    engine::ResilientExecutor resilient(&source, FastRetry(5, 10));
    EXPECT_TRUE(resilient.ExecuteSql("SELECT 1").ok());
    EXPECT_EQ(source.calls(), 2);
  }
  {
    // Two timeouts: permanent despite attempts remaining — the query is
    // too heavy for the source and must be degraded, not re-run.
    FakeSource source(
        {Status::Timeout("t"), Status::Timeout("t"), Status::OK()});
    engine::ResilientExecutor resilient(&source, FastRetry(5, 10));
    auto result = resilient.ExecuteSql("SELECT 1");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
    EXPECT_EQ(source.calls(), 2);
  }
}

TEST(ResilientExecutorTest, PermanentErrorsAreNotRetried) {
  FakeSource source({Status::Internal("bug"), Status::OK()});
  engine::ResilientExecutor resilient(&source, FastRetry(5, 10));
  auto result = resilient.ExecuteSql("SELECT 1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(source.calls(), 1);
}

TEST(ResilientExecutorTest, BackoffIsSeededAndDeterministic) {
  auto run = [](uint64_t seed) {
    FakeSource source({Status::Unavailable("u"), Status::Unavailable("u"),
                       Status::OK()});
    engine::RetryOptions retry = FastRetry(5, 10);
    std::vector<double> sleeps;
    retry.jitter_seed = seed;
    retry.sleep_fn = [&](double ms) { sleeps.push_back(ms); };
    engine::ResilientExecutor resilient(&source, retry);
    EXPECT_TRUE(resilient.ExecuteSql("SELECT 1").ok());
    return sleeps;
  };
  auto a = run(7), b = run(7), c = run(8);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // Exponential growth with jitter in [0.5, 1.0]x of the nominal value.
  EXPECT_GE(a[0], 0.5 * 5.0);
  EXPECT_LE(a[0], 5.0);
  EXPECT_GE(a[1], 0.5 * 10.0);
  EXPECT_LE(a[1], 10.0);
}

TEST(ResilientExecutorTest, BudgetIsSharedAcrossQueries) {
  // Two flaky queries, budget 1: the first consumes the only retry, the
  // second is denied with kResourceExhausted.
  FakeSource source({Status::Unavailable("u"), Status::OK(),
                     Status::Unavailable("u"), Status::OK()});
  engine::ResilientExecutor resilient(&source, FastRetry(5, 1));
  EXPECT_TRUE(resilient.ExecuteSql("SELECT 1").ok());
  auto result = resilient.ExecuteSql("SELECT 2");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(resilient.report().queries.size(), 2u);
  EXPECT_EQ(resilient.budget_used(), 1);
}

TEST(ResilientExecutorTest, QueryDeadlineIsPerQueryNotPerExecutor) {
  // A reused QueryExecutor re-arms its deadline on every ExecuteSql call:
  // burning wall-clock between two queries must not charge the second one.
  Database db;
  ASSERT_TRUE(
      sql::ExecuteDdl("CREATE TABLE T (k INT PRIMARY KEY)", &db).ok());
  ASSERT_TRUE(db.Insert("T", Tuple{Value::Int64(1)}).ok());
  engine::QueryExecutor executor(&db);
  executor.set_timeout_ms(50);
  ASSERT_TRUE(executor.ExecuteSql("SELECT k FROM T").ok());
  Timer wait;
  while (wait.ElapsedMillis() < 80) {
  }
  EXPECT_TRUE(executor.ExecuteSql("SELECT k FROM T").ok());
}

TEST(ResilientExecutorTest, CancelInterruptsBackoffSleep) {
  // A shutdown must never wait out a long backoff: the CancelToken makes
  // the sleep interruptible and the executor returns the last error.
  FakeSource source(std::vector<Status>(8, Status::Unavailable("down")));
  engine::RetryOptions retry;
  retry.max_attempts = 5;
  retry.initial_backoff_ms = 60000;  // would stall a minute if uninterrupted
  CancelToken cancel;
  retry.cancel = &cancel;
  engine::ResilientExecutor resilient(&source, retry);

  Timer timer;
  Result<engine::Relation> result = Status::Internal("not run");
  std::thread worker(
      [&] { result = resilient.ExecuteSql("SELECT 1"); });
  // Whether this lands before the first attempt, between attempts, or
  // mid-backoff, the executor must return the last error promptly.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  cancel.Cancel();
  worker.join();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(source.calls(), 1);  // no second attempt after cancellation
  EXPECT_LT(timer.ElapsedMillis(), 30000);
}

TEST(ResilientExecutorTest, SharedBudgetMetersRetriesAcrossExecutors) {
  // Two executors (two concurrent component-query tasks) draw from one
  // plan-wide budget: once it is spent, the next needed retry anywhere
  // fails with kResourceExhausted after a single attempt.
  engine::RetryBudget budget(2);
  FakeSource first_source(std::vector<Status>(8, Status::Unavailable("u")));
  FakeSource second_source(std::vector<Status>(8, Status::Unavailable("u")));
  engine::RetryOptions retry = FastRetry(10, /*budget=*/0);
  retry.shared_budget = &budget;

  engine::ResilientExecutor first(&first_source, retry);
  auto a = first.ExecuteSql("SELECT 1");
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(first_source.calls(), 3);  // 1 attempt + the whole budget
  EXPECT_EQ(budget.remaining(), 0);

  engine::ResilientExecutor second(&second_source, retry);
  auto b = second.ExecuteSql("SELECT 2");
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(second_source.calls(), 1);  // denied before any retry
}

TEST(ResilientExecutorTest, ExpiredDeadlineFailsWithoutExecuting) {
  FakeSource source({Status::OK()});
  engine::RetryOptions retry = FastRetry(3, 10);
  retry.has_deadline = true;
  retry.deadline = std::chrono::steady_clock::now() -
                   std::chrono::milliseconds(1);
  engine::ResilientExecutor resilient(&source, retry);
  auto result = resilient.ExecuteSql("SELECT 1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(source.calls(), 0);
}

TEST(ResilientExecutorTest, BackoffCrossingDeadlineFailsImmediately) {
  // The retry would succeed, but its backoff sleep would overshoot the
  // end-to-end deadline: fail now with kTimeout instead of sleeping.
  FakeSource source({Status::Unavailable("u"), Status::OK()});
  engine::RetryOptions retry;
  retry.max_attempts = 3;
  retry.retry_budget = 10;
  retry.initial_backoff_ms = 60000;  // any jitter still crosses the deadline
  retry.has_deadline = true;
  retry.deadline = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(50);
  engine::ResilientExecutor resilient(&source, retry);
  Timer timer;
  auto result = resilient.ExecuteSql("SELECT 1");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(source.calls(), 1);
  EXPECT_LT(timer.ElapsedMillis(), 30000);  // never slept the minute out
}

TEST(FaultInjectionTest, TableMatcherIsWordAndCaseInsensitive) {
  EXPECT_TRUE(engine::SqlReferencesTable("SELECT * FROM supplier", "SUPPLIER"));
  EXPECT_TRUE(engine::SqlReferencesTable("SELECT s.x FROM supplier s", "supplier"));
  EXPECT_FALSE(engine::SqlReferencesTable("SELECT * FROM suppliers", "supplier"));
  EXPECT_FALSE(engine::SqlReferencesTable("SELECT * FROM my_supplier", "supplier"));
  EXPECT_TRUE(engine::SqlReferencesTable("anything", ""));
}

}  // namespace
}  // namespace silkroute::core
