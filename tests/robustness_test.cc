// Edge-of-domain tests for the full pipeline: empty databases, markup
// characters in data, deep and wide view trees, zero-match subviews,
// publisher option combinations, and timeout propagation.
#include <gtest/gtest.h>

#include <sstream>

#include "silkroute/partition.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "sql/ddl.h"
#include "tests/test_util.h"
#include "tpch/schema.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

std::string PublishOrDie(Publisher* publisher, std::string_view rxl,
                         const PublishOptions& options) {
  std::ostringstream out;
  auto result = publisher->Publish(rxl, options, &out);
  EXPECT_TRUE(result.ok()) << result.status();
  return out.str();
}

TEST(RobustnessTest, EmptyDatabaseYieldsEmptyDocument) {
  Database db;
  ASSERT_TRUE(tpch::CreateTpchSchema(&db).ok());  // schema, no rows
  Publisher publisher(&db);
  for (PlanStrategy strategy :
       {PlanStrategy::kFullyPartitioned, PlanStrategy::kUnified,
        PlanStrategy::kGreedy}) {
    PublishOptions options;
    options.strategy = strategy;
    options.document_element = "suppliers";
    std::string xml = PublishOrDie(&publisher, Query1Rxl(), options);
    auto doc = xml::ParseXml(xml);
    ASSERT_TRUE(doc.ok()) << xml;
    EXPECT_EQ((*doc)->NumChildren(), 0u);
  }
}

TEST(RobustnessTest, MarkupCharactersInDataAreEscaped) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE T (k INT PRIMARY KEY, v TEXT)", &db)
                  .ok());
  ASSERT_TRUE(db.Insert("T", Tuple{Value::Int64(1),
                                   Value::String("<a> & \"b\" 'c'")})
                  .ok());
  ASSERT_TRUE(
      db.Insert("T", Tuple{Value::Int64(2), Value::String("]]></done>")})
          .ok());
  Publisher publisher(&db);
  PublishOptions options;
  options.document_element = "doc";
  std::string xml = PublishOrDie(
      &publisher, "from T $t construct <row>$t.v</row>", options);
  // The raw markup must not appear unescaped...
  EXPECT_EQ(xml.find("<a> &"), std::string::npos);
  EXPECT_EQ(xml.find("</done>"), std::string::npos);
  // ...and it must round-trip through the reader.
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << xml;
  auto rows = (*doc)->Children("row");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0]->text, "<a> & \"b\" 'c'");
  EXPECT_EQ(rows[1]->text, "]]></done>");
}

TEST(RobustnessTest, DeepChainView) {
  // A 10-level chain of same-scope elements: plans and reduction must cope
  // with maximal depth.
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE T (k INT PRIMARY KEY, v TEXT)", &db)
                  .ok());
  ASSERT_TRUE(
      db.Insert("T", Tuple{Value::Int64(1), Value::String("x")}).ok());
  std::string rxl = "from T $t construct ";
  for (int i = 0; i < 10; ++i) rxl += "<d" + std::to_string(i) + ">";
  rxl += "$t.v";
  for (int i = 9; i >= 0; --i) rxl += "</d" + std::to_string(i) + ">";

  Publisher publisher(&db);
  auto tree = publisher.BuildViewTree(rxl);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->MaxLevel(), 10);
  std::string reference;
  for (uint64_t mask : {uint64_t{0}, uint64_t{0x1FF}, uint64_t{0xAA}}) {
    PublishOptions options;
    options.document_element = "doc";
    std::ostringstream out;
    auto metrics = publisher.ExecutePlan(*tree, mask, options, &out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    if (reference.empty()) {
      reference = out.str();
      EXPECT_NE(reference.find("<d9>x</d9>"), std::string::npos);
    } else {
      EXPECT_EQ(out.str(), reference);
    }
  }
}

TEST(RobustnessTest, WideFanoutView) {
  // 20 parallel blocks under one root: exercises sibling-branch unions and
  // label ordering past single digits.
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE T (k INT PRIMARY KEY, v TEXT);"
                  "CREATE TABLE U (k INT PRIMARY KEY, w TEXT, tk INT,"
                  " FOREIGN KEY (tk) REFERENCES T(k))",
                  &db)
                  .ok());
  ASSERT_TRUE(
      db.Insert("T", Tuple{Value::Int64(1), Value::String("root")}).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(db.Insert("U", Tuple{Value::Int64(i), Value::String("u"),
                                     Value::Int64(1)})
                    .ok());
  }
  std::string rxl = "from T $t construct <root>";
  for (int i = 0; i < 20; ++i) {
    rxl += "{ from U $u" + std::to_string(i) + " where $t.k = $u" +
           std::to_string(i) + ".tk construct <c" + std::to_string(i) +
           ">$u" + std::to_string(i) + ".w</c" + std::to_string(i) + "> }";
  }
  rxl += "</root>";
  Database* dbp = &db;
  Publisher publisher(dbp);
  auto tree = publisher.BuildViewTree(rxl);
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->num_nodes(), 21u);
  PublishOptions options;
  options.document_element = "doc";
  std::string unified, partitioned;
  {
    options.strategy = PlanStrategy::kUnified;
    unified = PublishOrDie(&publisher, rxl, options);
  }
  {
    options.strategy = PlanStrategy::kFullyPartitioned;
    partitioned = PublishOrDie(&publisher, rxl, options);
  }
  EXPECT_EQ(unified, partitioned);
  auto doc = xml::ParseXml(unified);
  ASSERT_TRUE(doc.ok());
  const xml::XmlNode* root = (*doc)->FirstChild("root");
  ASSERT_NE(root, nullptr);
  // Children arrive in template (label) order: all c0 before any c1, etc.
  EXPECT_EQ(root->NumChildren(), 100u);  // 20 branches x 5 rows
  int last_branch = -1;
  for (const auto& child : root->children) {
    int branch = std::atoi(child->name.c_str() + 1);
    EXPECT_GE(branch, last_branch);
    last_branch = branch;
  }
}

TEST(RobustnessTest, SubviewWithNoMatchesIsEmpty) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());
  PublishOptions options;
  options.document_element = "result";
  std::ostringstream out;
  auto result = publisher.PublishSubview(
      Query1Rxl(), "/supplier[name='no such supplier']", options, &out);
  ASSERT_TRUE(result.ok()) << result.status();
  auto doc = xml::ParseXml(out.str());
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->NumChildren(), 0u);
}

TEST(RobustnessTest, ExecutePlanRejectsOutOfRangeMask) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  ASSERT_TRUE(tree.ok());
  PublishOptions options;
  std::ostringstream out;
  EXPECT_EQ(publisher.ExecutePlan(*tree, uint64_t{1} << 60, options, &out)
                .status()
                .code(),
            StatusCode::kOutOfRange);
}

TEST(RobustnessTest, PublisherTimeoutReportsTimedOut) {
  auto db = MakeTinyTpch(0.005);
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  ASSERT_TRUE(tree.ok());
  PublishOptions options;
  options.query_timeout_ms = 1e-6;
  std::ostringstream out;
  auto metrics =
      publisher.ExecutePlan(*tree, Partition::Unified(*tree).mask(),
                            options, &out);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_TRUE(metrics->timed_out);
}

TEST(RobustnessTest, DistinctSelectsProduceSameDocument) {
  auto db = MakeTinyTpch(0.002);
  Publisher publisher(db.get());
  PublishOptions plain;
  plain.document_element = "suppliers";
  PublishOptions distinct = plain;
  distinct.distinct_selects = true;
  std::string a = PublishOrDie(&publisher, Query1Rxl(), plain);
  std::string b = PublishOrDie(&publisher, Query1Rxl(), distinct);
  EXPECT_EQ(a, b);
}

TEST(RobustnessTest, CollectSqlOffOmitsStatements) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());
  PublishOptions options;
  options.collect_sql = false;
  options.document_element = "suppliers";
  std::ostringstream out;
  auto result = publisher.Publish(Query1Rxl(), options, &out);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->metrics.sql.empty());
}

TEST(RobustnessTest, NumericValuesRenderCanonically) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE N (k INT PRIMARY KEY, d DOUBLE)", &db)
                  .ok());
  ASSERT_TRUE(
      db.Insert("N", Tuple{Value::Int64(1), Value::Double(2.5)}).ok());
  ASSERT_TRUE(
      db.Insert("N", Tuple{Value::Int64(2), Value::Double(3.0)}).ok());
  Publisher publisher(&db);
  PublishOptions options;
  options.document_element = "doc";
  std::string xml = PublishOrDie(
      &publisher, "from N $n construct <v>$n.d</v>", options);
  EXPECT_NE(xml.find("<v>2.5</v>"), std::string::npos) << xml;
  EXPECT_NE(xml.find("<v>3.0</v>"), std::string::npos) << xml;
}

}  // namespace
}  // namespace silkroute::core
