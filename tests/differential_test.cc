// Differential testing harness for morsel-driven parallelism (DESIGN.md
// §11) and the sharded columnar storage layout (DESIGN.md §16): neither
// the worker count nor the shard count may be distinguishable from the
// single-shard serial reference. A seeded generator produces random
// schemas, NULL-heavy data, and random queries (multi-way joins, left
// outer joins, filters, DISTINCT, ORDER BY over mixed-type keys); every
// query runs over the same logical data stored at shard counts 1, 4, and
// 16, each at parallelism 1, 2, and 8 with tiny morsels/thresholds so
// even small fixtures cross every parallel operator and every multi-shard
// scan path. The tuple streams must be identical value-for-value (exact
// type and payload, including -0.0 vs 0.0) and in identical order, and
// the layout-invariant ExecStats must match exactly — same rows
// scanned/joined/sorted, same packed keys encoded. Failures print the
// seed, shard count, parallelism, and SQL so a reproduction is one
// copy-paste away. (XML byte-identity across shard counts is pinned by
// golden_xml_test.cc against the pre-columnar row-major goldens.)
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/morsel.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace silkroute::engine {
namespace {

// All randomness goes through rng() % n — never std::uniform_*_distribution,
// whose output is implementation-defined and would break seed reproduction
// across standard libraries.
using Rng = std::mt19937;

size_t Pick(Rng& rng, size_t n) { return static_cast<size_t>(rng() % n); }
bool Chance(Rng& rng, uint32_t percent) { return rng() % 100 < percent; }

Value RandomDoubleColValue(Rng& rng) {
  // A kDouble column accepts int64s too, so this column carries the
  // cross-type Compare/Hash semantics (3 vs 3.0) and the giant-magnitude
  // tiebreaker regime into join keys, DISTINCT, and ORDER BY.
  static const double kDoubles[] = {-1e300, -2.5,  -0.5, -0.0, 0.0,
                                    0.5,    3.0,   7.0,  1e15, 9007199254740994.0};
  constexpr int64_t kExact = int64_t{1} << 53;
  switch (rng() % 10) {
    case 0:
    case 1:
    case 2:
      return Value::Int64(static_cast<int64_t>(rng() % 8));
    case 3:
      return Value::Int64(kExact + static_cast<int64_t>(rng() % 3));
    case 4:
      return Value::Int64(-kExact - static_cast<int64_t>(rng() % 3));
    default:
      return Value::Double(kDoubles[rng() % 10]);
  }
}

Value RandomStringColValue(Rng& rng) {
  static const char* kStrings[] = {"", "a", "ab", "b", "x", "yy", "zzz"};
  return Value::String(kStrings[rng() % 7]);
}

/// Random schema + NULL-heavy data. Every table is
///   tN(k0 INT64 NULL, k1 INT64 NULL, d0 DOUBLE NULL, s0 STRING NULL)
/// so any generated column reference is valid against any table; the
/// small k domains make joins productive without exploding.
struct GenDb {
  Database db;
  size_t num_tables = 0;
};

void BuildDatabaseInto(Rng& rng, GenDb* gen) {
  const size_t num_tables = 2 + Pick(rng, 3);  // 2..4
  for (size_t t = 0; t < num_tables; ++t) {
    const std::string name = "t" + std::to_string(t);
    TableSchema schema(name, {
                                 {"k0", DataType::kInt64, /*nullable=*/true},
                                 {"k1", DataType::kInt64, true},
                                 {"d0", DataType::kDouble, true},
                                 {"s0", DataType::kString, true},
                             });
    ASSERT_TRUE(gen->db.CreateTable(std::move(schema)).ok())
        << "CreateTable " << name;
    const size_t rows = 20 + Pick(rng, 61);  // 20..80
    Table* table = *gen->db.GetTable(name);
    for (size_t r = 0; r < rows; ++r) {
      Tuple row{
          Chance(rng, 15) ? Value::Null()
                          : Value::Int64(static_cast<int64_t>(rng() % 10)),
          Chance(rng, 15) ? Value::Null()
                          : Value::Int64(static_cast<int64_t>(rng() % 10)),
          Chance(rng, 30) ? Value::Null() : RandomDoubleColValue(rng),
          Chance(rng, 20) ? Value::Null() : RandomStringColValue(rng),
      };
      ASSERT_TRUE(table->Insert(std::move(row)).ok());
    }
  }
  gen->num_tables = num_tables;  // set only after every insert succeeded
}

const char* RandomColumn(Rng& rng) {
  static const char* kCols[] = {"k0", "k1", "d0", "s0"};
  return kCols[rng() % 4];
}

std::string Qualified(size_t table, const char* col) {
  return "t" + std::to_string(table) + "." + col;
}

/// One random query over tables t0..t{use-1}. Shapes:
///  - comma FROM list with equijoin WHERE conjuncts (the greedy hash-join
///    planner; dropping a conjunct occasionally forces a cross product),
///  - LEFT OUTER JOIN ... ON (two tables),
/// plus optional single-table filters, DISTINCT, and 1-2 ORDER BY keys.
std::string GenerateSql(Rng& rng, size_t num_tables) {
  const size_t use = 2 + Pick(rng, num_tables - 1);  // 2..num_tables
  const bool outer = use == 2 && Chance(rng, 25);

  std::ostringstream sql;
  sql << "SELECT ";
  if (Chance(rng, 30)) sql << "DISTINCT ";
  const size_t num_select = 1 + Pick(rng, 4);
  for (size_t i = 0; i < num_select; ++i) {
    if (i > 0) sql << ", ";
    sql << Qualified(Pick(rng, use), RandomColumn(rng));
  }

  std::vector<std::string> where;
  if (outer) {
    sql << " FROM t0 LEFT OUTER JOIN t1 ON t0.k" << rng() % 2 << " = t1.k"
        << rng() % 2;
    if (Chance(rng, 30)) {
      sql << " AND t0.k" << rng() % 2 << " = t1.k" << rng() % 2;
    }
  } else {
    sql << " FROM ";
    for (size_t t = 0; t < use; ++t) {
      if (t > 0) sql << ", ";
      sql << "t" << t;
    }
    for (size_t t = 0; t + 1 < use; ++t) {
      // 10%: drop the conjunct, leaving a cross product (serial fallback).
      if (Chance(rng, 10)) continue;
      where.push_back(Qualified(t, rng() % 2 ? "k0" : "k1") + " = " +
                      Qualified(t + 1, rng() % 2 ? "k0" : "k1"));
    }
  }

  // Single-table filters, pushed down by the planner.
  if (Chance(rng, 40)) {
    where.push_back(Qualified(Pick(rng, use), rng() % 2 ? "k0" : "k1") +
                    " = " + std::to_string(rng() % 10));
  }
  if (Chance(rng, 20)) {
    where.push_back(Qualified(Pick(rng, use), "s0") + " IS NOT NULL");
  }
  if (Chance(rng, 15)) {
    where.push_back(Qualified(Pick(rng, use), "d0") + " = 3");  // cross-type
  }
  if (!where.empty()) {
    sql << " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) sql << " AND ";
      sql << where[i];
    }
  }

  if (Chance(rng, 50)) {
    sql << " ORDER BY " << Qualified(Pick(rng, use), RandomColumn(rng));
    if (Chance(rng, 40)) sql << " DESC";
    if (Chance(rng, 40)) {
      sql << ", " << Qualified(Pick(rng, use), RandomColumn(rng));
      if (Chance(rng, 40)) sql << " DESC";
    }
  }
  return sql.str();
}

/// Exact identity, not Compare()==0: the parallel engine must produce the
/// same *representation* (Int64(3) != Double(3.0), -0.0 != 0.0 bitwise).
bool ValueIdentical(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_int64() != b.is_int64() || a.is_double() != b.is_double() ||
      a.is_string() != b.is_string()) {
    return false;
  }
  if (a.is_int64()) return a.AsInt64() == b.AsInt64();
  if (a.is_double()) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return std::memcmp(&x, &y, sizeof(x)) == 0;
  }
  return a.AsString() == b.AsString();
}

std::string ValueToString(const Value& v) {
  if (v.is_null()) return "NULL";
  if (v.is_int64()) return "i:" + std::to_string(v.AsInt64());
  if (v.is_double()) {
    std::ostringstream os;
    os << "d:" << v.AsDouble();
    return os.str();
  }
  return "s:'" + v.AsString() + "'";
}

struct RunOutcome {
  Status status = Status::OK();
  Relation relation;
  ExecStats stats;
};

RunOutcome RunQuery(const Database& db, const std::string& sql, int parallelism,
               MorselPool* pool) {
  QueryExecutor executor(&db);
  if (parallelism > 1) {
    ExecutorOptions options;
    options.parallelism = parallelism;
    options.pool = pool;
    // Tiny morsels and a floor threshold: 20-row tables still split into
    // many concurrent morsels, so every parallel operator really runs
    // parallel instead of short-circuiting on size.
    options.morsel_rows = 7;
    options.parallel_threshold = 1;
    executor.set_exec_options(options);
  }
  RunOutcome outcome;
  auto result = executor.ExecuteSql(sql);
  outcome.stats = executor.stats();
  if (result.ok()) {
    outcome.relation = std::move(*result);
  } else {
    outcome.status = result.status();
  }
  return outcome;
}

/// The stats that must be invariant across worker counts (everything but
/// the dispatch accounting).
std::string InvariantStats(const ExecStats& s) {
  std::ostringstream os;
  os << "scanned=" << s.rows_scanned << " joined=" << s.rows_joined
     << " sorted=" << s.rows_sorted << " nlj=" << s.nested_loop_joins
     << " hj=" << s.hash_joins << " probes=" << s.index_probes
     << " keys=" << s.keys_encoded << " key_bytes=" << s.bytes_encoded;
  return os.str();
}

void ExpectIdenticalRuns(const RunOutcome& serial, const RunOutcome& parallel,
                         int parallelism, size_t shard_count, uint32_t seed,
                         const std::string& sql) {
  const std::string repro = "seed=" + std::to_string(seed) +
                            " shards=" + std::to_string(shard_count) +
                            " parallelism=" + std::to_string(parallelism) +
                            "\nsql: " + sql;
  ASSERT_EQ(serial.status.ok(), parallel.status.ok())
      << repro << "\nserial: " << serial.status
      << "\nparallel: " << parallel.status;
  if (!serial.status.ok()) {
    ASSERT_EQ(serial.status.code(), parallel.status.code()) << repro;
    return;
  }
  ASSERT_EQ(serial.relation.schema.size(), parallel.relation.schema.size())
      << repro;
  ASSERT_EQ(serial.relation.rows.size(), parallel.relation.rows.size())
      << repro;
  for (size_t r = 0; r < serial.relation.rows.size(); ++r) {
    const Tuple& a = serial.relation.rows[r];
    const Tuple& b = parallel.relation.rows[r];
    ASSERT_EQ(a.size(), b.size()) << repro << "\nrow " << r;
    for (size_t c = 0; c < a.size(); ++c) {
      ASSERT_TRUE(ValueIdentical(a.values()[c], b.values()[c]))
          << repro << "\nrow " << r << " col " << c << ": serial "
          << ValueToString(a.values()[c]) << " vs parallel "
          << ValueToString(b.values()[c]);
    }
  }
  EXPECT_EQ(InvariantStats(serial.stats), InvariantStats(parallel.stats))
      << repro;
}

TEST(DifferentialTest, ParallelAndShardedExecutionIsIndistinguishable) {
  // 500+ random queries, each over shard counts {1, 4, 16}, each at
  // parallelism {1, 2, 8}, all compared against the single-shard serial
  // reference. Override with SILK_DIFF_QUERIES for deeper soak runs.
  int num_queries = 500;
  if (const char* env = std::getenv("SILK_DIFF_QUERIES")) {
    num_queries = std::atoi(env);
  }
  constexpr uint32_t kBaseSeed = 20260805;
  constexpr size_t kShardCounts[] = {1, 4, 16};
  constexpr size_t kNumLayouts = 3;

  // Shared pools across all queries: batches from successive queries (and
  // from TSan runs of this test) reuse warm worker threads, exercising the
  // pool lifecycle the service sees.
  MorselPool pool_one(1);    // parallelism 2
  MorselPool pool_seven(7);  // parallelism 8

  int executed = 0;
  for (int q = 0; q < num_queries; ++q) {
    const uint32_t seed = kBaseSeed + static_cast<uint32_t>(q);
    Rng rng(seed);
    // One database per shard count, every layout built from the same data
    // seed, so all three hold identical logical content in different
    // physical arrangements.
    GenDb gens[kNumLayouts];
    for (size_t si = 0; si < kNumLayouts; ++si) {
      SCOPED_TRACE("seed=" + std::to_string(seed) +
                   " shards=" + std::to_string(kShardCounts[si]));
      gens[si].db.set_default_shard_count(kShardCounts[si]);
      Rng db_rng(seed * 2654435761u);
      BuildDatabaseInto(db_rng, &gens[si]);
      ASSERT_GT(gens[si].num_tables, 0u);  // builder ASSERT fired if zero
    }
    const std::string sql = GenerateSql(rng, gens[0].num_tables);

    // Reference: one shard, fully serial — the row-major-equivalent run.
    const RunOutcome reference = RunQuery(gens[0].db, sql, 1, nullptr);

    for (size_t si = 0; si < kNumLayouts; ++si) {
      const size_t shards = kShardCounts[si];
      if (si != 0) {
        const RunOutcome serial = RunQuery(gens[si].db, sql, 1, nullptr);
        ExpectIdenticalRuns(reference, serial, 1, shards, seed, sql);
        if (::testing::Test::HasFatalFailure()) return;
      }
      const RunOutcome two = RunQuery(gens[si].db, sql, 2, &pool_one);
      const RunOutcome eight = RunQuery(gens[si].db, sql, 8, &pool_seven);
      ExpectIdenticalRuns(reference, two, 2, shards, seed, sql);
      if (::testing::Test::HasFatalFailure()) return;
      ExpectIdenticalRuns(reference, eight, 8, shards, seed, sql);
      if (::testing::Test::HasFatalFailure()) return;

      // The harness must actually exercise the parallel paths: at least
      // one run per layout dispatched morsels or recorded a deliberate
      // fallback.
      EXPECT_GT(
          eight.stats.morsels_dispatched + eight.stats.parallel_fallbacks, 0u)
          << "seed=" << seed << " shards=" << shards << "\nsql: " << sql;
    }
    ++executed;
  }
  EXPECT_EQ(executed, num_queries);
}

}  // namespace
}  // namespace silkroute::engine
