#include <gtest/gtest.h>

#include <algorithm>

#include "engine/executor.h"
#include "sql/parser.h"

namespace silkroute::engine {
namespace {

/// A small two-table fixture mirroring the paper's running example:
///   Supplier(suppkey*, name, nationkey)  -- supplier 3 has no parts
///   Part(partkey*, suppkey, pname)
///   Nation(nationkey*, nname)
class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema supplier("Supplier", {{"suppkey", DataType::kInt64, false},
                                      {"name", DataType::kString, false},
                                      {"nationkey", DataType::kInt64, false}});
    ASSERT_TRUE(supplier.SetPrimaryKey({"suppkey"}).ok());
    ASSERT_TRUE(db_.CreateTable(supplier).ok());
    TableSchema part("Part", {{"partkey", DataType::kInt64, false},
                              {"suppkey", DataType::kInt64, false},
                              {"pname", DataType::kString, false}});
    ASSERT_TRUE(part.SetPrimaryKey({"partkey"}).ok());
    ASSERT_TRUE(db_.CreateTable(part).ok());
    TableSchema nation("Nation", {{"nationkey", DataType::kInt64, false},
                                  {"nname", DataType::kString, false}});
    ASSERT_TRUE(nation.SetPrimaryKey({"nationkey"}).ok());
    ASSERT_TRUE(db_.CreateTable(nation).ok());

    Insert("Supplier", {Value::Int64(1), Value::String("s1"), Value::Int64(10)});
    Insert("Supplier", {Value::Int64(2), Value::String("s2"), Value::Int64(11)});
    Insert("Supplier", {Value::Int64(3), Value::String("s3"), Value::Int64(10)});
    Insert("Part", {Value::Int64(100), Value::Int64(1), Value::String("brass")});
    Insert("Part", {Value::Int64(101), Value::Int64(1), Value::String("steel")});
    Insert("Part", {Value::Int64(102), Value::Int64(2), Value::String("nickel")});
    Insert("Nation", {Value::Int64(10), Value::String("USA")});
    Insert("Nation", {Value::Int64(11), Value::String("Spain")});
  }

  void Insert(const std::string& table, Tuple row) {
    ASSERT_TRUE(db_.Insert(table, std::move(row)).ok());
  }

  Relation Run(const std::string& sql) {
    QueryExecutor exec(&db_);
    auto result = exec.ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status();
    last_stats_ = exec.stats();
    return result.ok() ? std::move(result).value() : Relation{};
  }

  Status RunError(const std::string& sql) {
    QueryExecutor exec(&db_);
    auto result = exec.ExecuteSql(sql);
    EXPECT_FALSE(result.ok()) << sql;
    return result.status();
  }

  Database db_;
  ExecStats last_stats_;
};

TEST_F(ExecutorTest, FullScan) {
  Relation r = Run("select * from Supplier");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.schema.size(), 3u);
  EXPECT_EQ(r.schema.column(0).FullName(), "Supplier.suppkey");
}

TEST_F(ExecutorTest, AliasQualifiesColumns) {
  Relation r = Run("select s.name from Supplier s");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "s1");
}

TEST_F(ExecutorTest, FilterPushdown) {
  Relation r = Run("select * from Supplier s where s.suppkey = 2");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "s2");
}

TEST_F(ExecutorTest, ProjectionWithLiteralsAndArithmetic) {
  Relation r = Run("select 1 as one, s.suppkey + 10 as k from Supplier s "
                   "where s.suppkey = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 11);
}

TEST_F(ExecutorTest, CommaJoinUsesHashJoin) {
  Relation r = Run(
      "select s.name, p.pname from Supplier s, Part p "
      "where s.suppkey = p.suppkey");
  EXPECT_EQ(r.rows.size(), 3u);
  EXPECT_GE(last_stats_.hash_joins, 1u);
  EXPECT_EQ(last_stats_.nested_loop_joins, 0u);
}

TEST_F(ExecutorTest, ThreeWayChainJoin) {
  Relation r = Run(
      "select s.name, p.pname, n.nname from Supplier s, Part p, Nation n "
      "where s.suppkey = p.suppkey and s.nationkey = n.nationkey");
  EXPECT_EQ(r.rows.size(), 3u);
  for (const auto& row : r.rows) {
    EXPECT_FALSE(row[2].is_null());
  }
}

TEST_F(ExecutorTest, CrossProductWhenNoPredicate) {
  Relation r = Run("select * from Supplier s, Nation n");
  EXPECT_EQ(r.rows.size(), 6u);  // 3 x 2
}

TEST_F(ExecutorTest, ExplicitInnerJoin) {
  Relation r = Run(
      "select s.name, n.nname from Supplier s join Nation n "
      "on s.nationkey = n.nationkey where s.suppkey = 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "USA");
}

TEST_F(ExecutorTest, LeftOuterJoinKeepsUnmatched) {
  Relation r = Run(
      "select s.suppkey, p.pname from Supplier s "
      "left outer join Part p on s.suppkey = p.suppkey "
      "order by s.suppkey, p.pname");
  // s1 x 2 parts, s2 x 1 part, s3 padded.
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[3][0].AsInt64(), 3);
  EXPECT_TRUE(r.rows[3][1].is_null());
}

TEST_F(ExecutorTest, LeftOuterJoinWithResidualOnCondition) {
  // The ON-condition filter keeps the left row with padding when no match
  // passes the residual (standard LOJ semantics).
  Relation r = Run(
      "select s.suppkey, p.pname from Supplier s "
      "left outer join Part p on s.suppkey = p.suppkey and p.pname = 'brass' "
      "order by s.suppkey");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "brass");
  EXPECT_TRUE(r.rows[1][1].is_null());
  EXPECT_TRUE(r.rows[2][1].is_null());
}

TEST_F(ExecutorTest, DisjunctiveOuterJoin) {
  // The unified outer-join shape: OR of branch conditions with literal tags.
  Relation r = Run(
      "select s.suppkey, Q.L2, Q.v from Supplier s left outer join "
      "((select 1 as L2, n.nationkey as k, n.nname as v from Nation n) union "
      " (select 2 as L2, p.suppkey as k, p.pname as v from Part p)) as Q "
      "on (Q.L2 = 1 and s.nationkey = Q.k) or (Q.L2 = 2 and s.suppkey = Q.k) "
      "order by s.suppkey, Q.L2, Q.v");
  // s1: nation + 2 parts; s2: nation + 1 part; s3: nation only.
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(last_stats_.nested_loop_joins, 0u);  // decomposed, not fallback
  EXPECT_EQ(r.rows[0][1].AsInt64(), 1);          // s1 nation row first
  EXPECT_EQ(r.rows[1][2].AsString(), "brass");
  EXPECT_EQ(r.rows[5][1].AsInt64(), 1);          // s3 has only the nation row
}

TEST_F(ExecutorTest, NestedLoopFallbackForInequalityJoin) {
  Relation r = Run(
      "select s.suppkey, n.nationkey from Supplier s join Nation n "
      "on s.nationkey < n.nationkey");
  EXPECT_EQ(r.rows.size(), 2u);  // suppliers with nationkey 10 match nation 11
  EXPECT_GE(last_stats_.nested_loop_joins, 1u);
}

TEST_F(ExecutorTest, NullsNeverMatchInHashJoin) {
  TableSchema t("WithNulls", {{"k", DataType::kInt64, true}});
  ASSERT_TRUE(db_.CreateTable(t).ok());
  Insert("WithNulls", {Value::Null()});
  Insert("WithNulls", {Value::Int64(1)});
  Relation r = Run(
      "select * from WithNulls a join WithNulls b on a.k = b.k");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(ExecutorTest, UnionAllConcatenates) {
  Relation r = Run(
      "(select s.suppkey as k from Supplier s) union all "
      "(select p.partkey as k from Part p)");
  EXPECT_EQ(r.rows.size(), 6u);
}

TEST_F(ExecutorTest, UnionArityMismatchIsError) {
  Status s = RunError(
      "(select suppkey, name from Supplier) union (select partkey from Part)");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(ExecutorTest, OrderByAscendingAndDescending) {
  Relation r = Run("select s.suppkey as k from Supplier s order by k desc");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 3);
  EXPECT_EQ(r.rows[2][0].AsInt64(), 1);
}

TEST_F(ExecutorTest, OrderByNonProjectedColumn) {
  // The paper's generated queries sort by columns of the pre-projection
  // relation (e.g. `order by s.suppkey` with a different select list).
  Relation r = Run(
      "select s.name from Supplier s order by s.nationkey desc, s.suppkey");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsString(), "s2");  // nationkey 11 first
}

TEST_F(ExecutorTest, OrderByNullsFirst) {
  Relation r = Run(
      "select s.suppkey, p.pname from Supplier s "
      "left outer join Part p on s.suppkey = p.suppkey "
      "order by p.pname, s.suppkey");
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_TRUE(r.rows[0][1].is_null());  // padded row sorts first
}

TEST_F(ExecutorTest, OrderByOnUnionOutput) {
  Relation r = Run(
      "(select s.suppkey as k from Supplier s) union all "
      "(select p.partkey as k from Part p) order by k desc");
  ASSERT_EQ(r.rows.size(), 6u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 102);
}

TEST_F(ExecutorTest, DerivedTableExecutesSubquery) {
  Relation r = Run(
      "select D.k from (select s.suppkey as k from Supplier s "
      "where s.nationkey = 10) as D order by D.k");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 3);
}

TEST_F(ExecutorTest, DerivedTableJoinsWithBase) {
  Relation r = Run(
      "select s.name, D.pname from Supplier s, "
      "(select p.suppkey as sk, p.pname as pname from Part p) as D "
      "where s.suppkey = D.sk order by D.pname");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorTest, SelectNoFromYieldsOneRow) {
  Relation r = Run("select 1 as a, 'x' as b");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][1].AsString(), "x");
}

TEST_F(ExecutorTest, UnknownTableIsError) {
  EXPECT_EQ(RunError("select * from Nope").code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, UnknownColumnIsError) {
  EXPECT_EQ(RunError("select s.nope from Supplier s").code(),
            StatusCode::kNotFound);
}

TEST_F(ExecutorTest, StatsCountScannedRows) {
  Run("select * from Supplier s, Part p where s.suppkey = p.suppkey");
  EXPECT_EQ(last_stats_.rows_scanned, 6u);  // 3 suppliers + 3 parts
}

TEST_F(ExecutorTest, ResidualCrossItemPredicate) {
  // A non-equi predicate across FROM items must survive as a residual
  // filter after the greedy joins.
  Relation r = Run(
      "select s.suppkey, p.partkey from Supplier s, Part p "
      "where s.suppkey = p.suppkey and p.partkey > s.suppkey + 99");
  EXPECT_EQ(r.rows.size(), 2u);  // (1,101) and (2,102); (1,100) fails 100>100
}

TEST_F(ExecutorTest, IndexProbeForLiteralEquality) {
  auto table = db_.GetTable("Part");
  ASSERT_TRUE(table.ok());
  ASSERT_TRUE((*table)->CreateIndex("suppkey").ok());
  Relation r = Run(
      "select p.pname from Part p where p.suppkey = 1 order by pname");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "brass");
  EXPECT_GT(last_stats_.index_probes, 0u);
  EXPECT_LT(last_stats_.rows_scanned, 3u);  // probed, not scanned
}

TEST_F(ExecutorTest, IndexAndScanAgree) {
  Database indexed;
  TableSchema t("T", {{"k", DataType::kInt64, false},
                      {"v", DataType::kInt64, false}});
  ASSERT_TRUE(indexed.CreateTable(t).ok());
  auto table = indexed.GetTable("T");
  ASSERT_TRUE(table.ok());
  for (int64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE((*table)->Insert(Tuple{Value::Int64(i), Value::Int64(i % 7)})
                    .ok());
  }
  auto run = [&](const char* sql) {
    QueryExecutor exec(&indexed);
    auto result = exec.ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << result.status();
    return result.ok() ? result->rows.size() : 0;
  };
  size_t scanned = run("select t.k from T t where t.v = 3");
  ASSERT_TRUE((*table)->CreateIndex("v").ok());
  size_t probed = run("select t.k from T t where t.v = 3");
  EXPECT_EQ(scanned, probed);
  // Index maintained by inserts after creation.
  ASSERT_TRUE(
      (*table)->Insert(Tuple{Value::Int64(200), Value::Int64(3)}).ok());
  EXPECT_EQ(run("select t.k from T t where t.v = 3"), probed + 1);
}

TEST_F(ExecutorTest, IndexOnMissingColumnRejected) {
  auto table = db_.GetTable("Part");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->CreateIndex("nope").code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*table)->GetIndex("nope"), nullptr);
}

TEST_F(ExecutorTest, DistinctRemovesDuplicateRows) {
  Relation r = Run("select distinct p.suppkey from Part p order by suppkey");
  ASSERT_EQ(r.rows.size(), 2u);  // parts belong to suppliers 1 and 2
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r.rows[1][0].AsInt64(), 2);
}

TEST_F(ExecutorTest, DistinctKeepsDistinctRows) {
  Relation r = Run("select distinct p.partkey, p.suppkey from Part p");
  EXPECT_EQ(r.rows.size(), 3u);
}

TEST_F(ExecutorTest, DistinctTreatsNullsAsEqual) {
  TableSchema t("D", {{"k", DataType::kInt64, true}});
  ASSERT_TRUE(db_.CreateTable(t).ok());
  Insert("D", {Value::Null()});
  Insert("D", {Value::Null()});
  Insert("D", {Value::Int64(1)});
  Relation r = Run("select distinct d.k from D d");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(ExecutorTest, DistinctRoundTripsThroughSqlText) {
  auto q = sql::ParseQuery("select distinct a from T");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->ToSql(), "select distinct a from T");
}

TEST_F(ExecutorTest, SelfJoinWithDistinctAliases) {
  Relation r = Run(
      "select a.suppkey, b.suppkey from Supplier a, Supplier b "
      "where a.nationkey = b.nationkey and a.suppkey < b.suppkey");
  ASSERT_EQ(r.rows.size(), 1u);  // (1, 3) share nationkey 10
  EXPECT_EQ(r.rows[0][0].AsInt64(), 1);
  EXPECT_EQ(r.rows[0][1].AsInt64(), 3);
}

}  // namespace
}  // namespace silkroute::engine
