// Tests for the concurrent publishing service (src/service/): the
// circuit-breaker state machine (with an injected clock), admission
// control and overload shedding, deadline propagation, and — the key
// property — that concurrent execution produces XML byte-identical to the
// single-threaded Publisher.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "engine/fault_injection.h"
#include "service/circuit_breaker.h"
#include "service/publishing_service.h"
#include "silkroute/publisher.h"
#include "sql/ddl.h"
#include "tests/test_util.h"

namespace silkroute::service {
namespace {

using core::PlanStrategy;
using core::Publisher;
using core::PublishOptions;

// ---------------------------------------------------------------------------
// CircuitBreaker state machine, driven by an injected clock.

struct BreakerFixture {
  double now = 0;
  CircuitBreaker breaker;

  explicit BreakerFixture(CircuitBreakerOptions options = {})
      : breaker("T", WithClock(std::move(options))) {}

  CircuitBreakerOptions WithClock(CircuitBreakerOptions options) {
    options.now_ms = [this] { return now; };
    return options;
  }
};

TEST(CircuitBreakerTest, TripsAfterConsecutiveFailures) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  BreakerFixture f(options);
  for (int i = 0; i < 2; ++i) {
    auto d = f.breaker.Admit();
    ASSERT_EQ(d, CircuitBreaker::Decision::kAllow);
    f.breaker.RecordFailure(d);
    EXPECT_EQ(f.breaker.state(), BreakerState::kClosed);
  }
  auto d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  EXPECT_EQ(f.breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(f.breaker.counters().trips, 1u);
  EXPECT_EQ(f.breaker.Admit(), CircuitBreaker::Decision::kFastFail);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailures) {
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  BreakerFixture f(options);
  auto d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  d = f.breaker.Admit();
  f.breaker.RecordSuccess(d);  // streak broken
  d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  EXPECT_EQ(f.breaker.state(), BreakerState::kClosed);
  d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  EXPECT_EQ(f.breaker.state(), BreakerState::kOpen);
}

TEST(CircuitBreakerTest, OpenFastFailsUntilCooldownThenProbes) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 100;
  BreakerFixture f(options);
  auto d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  ASSERT_EQ(f.breaker.state(), BreakerState::kOpen);

  f.now = 50;  // still cooling down
  EXPECT_EQ(f.breaker.Admit(), CircuitBreaker::Decision::kFastFail);
  f.now = 101;  // cool-down elapsed: one probe admitted
  EXPECT_EQ(f.breaker.Admit(), CircuitBreaker::Decision::kProbe);
  EXPECT_EQ(f.breaker.state(), BreakerState::kHalfOpen);
  // Second caller while the probe is in flight sheds.
  EXPECT_EQ(f.breaker.Admit(), CircuitBreaker::Decision::kFastFail);
}

TEST(CircuitBreakerTest, ProbeSuccessClosesProbeFailureReTrips) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 10;
  BreakerFixture f(options);

  auto d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  f.now = 11;
  d = f.breaker.Admit();
  ASSERT_EQ(d, CircuitBreaker::Decision::kProbe);
  f.breaker.RecordFailure(d);  // source still sick: re-trip
  EXPECT_EQ(f.breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(f.breaker.counters().trips, 2u);

  f.now = 22;
  d = f.breaker.Admit();
  ASSERT_EQ(d, CircuitBreaker::Decision::kProbe);
  f.breaker.RecordSuccess(d);  // source recovered
  EXPECT_EQ(f.breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(f.breaker.Admit(), CircuitBreaker::Decision::kAllow);
}

TEST(CircuitBreakerTest, AbandonedProbeFreesTheSlot) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 10;
  BreakerFixture f(options);
  auto d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  f.now = 11;
  d = f.breaker.Admit();
  ASSERT_EQ(d, CircuitBreaker::Decision::kProbe);
  // The query never executed (e.g. a sibling breaker fast-failed it):
  // without AbandonProbe the breaker would wait forever for a verdict.
  f.breaker.AbandonProbe(d);
  EXPECT_EQ(f.breaker.Admit(), CircuitBreaker::Decision::kProbe);
}

TEST(CircuitBreakerTest, OpenJitterDesynchronizesSiblingCooldowns) {
  // Two breakers built from the same options struct (same base seed) but
  // different keys draw independent jitter streams: tripped by the same
  // incident, their cool-downs end at different times, so a recovering
  // server sees a trickle of probes instead of a synchronized herd.
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 100;
  options.open_jitter_ms = 100;
  double now = 0;
  options.now_ms = [&now] { return now; };
  CircuitBreaker a("replica-a", options);
  CircuitBreaker b("replica-b", options);
  auto da = a.Admit();
  a.RecordFailure(da);
  auto db = b.Admit();
  b.RecordFailure(db);
  ASSERT_TRUE(a.WouldFastFail());
  ASSERT_TRUE(b.WouldFastFail());

  // Scan the jitter window: there must be a moment where exactly one of
  // the two would admit a probe.
  bool diverged = false;
  for (now = 100; now <= 200 && !diverged; now += 1) {
    diverged = a.WouldFastFail() != b.WouldFastFail();
  }
  EXPECT_TRUE(diverged) << "sibling breakers re-opened in lockstep";
  // Past the worst-case jitter both have cooled down.
  now = 201;
  EXPECT_FALSE(a.WouldFastFail());
  EXPECT_FALSE(b.WouldFastFail());
}

TEST(CircuitBreakerTest, ZeroJitterKeepsCooldownDeterministic) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 100;
  options.open_jitter_ms = 0;  // the pre-jitter behavior, bit for bit
  BreakerFixture f(options);
  auto d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  f.now = 99;
  EXPECT_TRUE(f.breaker.WouldFastFail());
  f.now = 100;
  EXPECT_FALSE(f.breaker.WouldFastFail());
}

TEST(CircuitBreakerTest, WouldFastFailIsSideEffectFree) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_ms = 100;
  BreakerFixture f(options);
  auto d = f.breaker.Admit();
  f.breaker.RecordFailure(d);
  ASSERT_EQ(f.breaker.state(), BreakerState::kOpen);
  // Polling health must not consume probe admissions or count fast-fails
  // — it is the router's look-before-you-leap check.
  size_t fast_fails = f.breaker.counters().fast_fails;
  for (int i = 0; i < 100; ++i) (void)f.breaker.WouldFastFail();
  EXPECT_EQ(f.breaker.counters().fast_fails, fast_fails);
  f.now = 101;
  EXPECT_FALSE(f.breaker.WouldFastFail());
  EXPECT_EQ(f.breaker.state(), BreakerState::kOpen);  // still no transition
  EXPECT_EQ(f.breaker.Admit(), CircuitBreaker::Decision::kProbe);
}

TEST(CircuitBreakerTest, RegistryCreatesPerKeyAndAggregates) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  CircuitBreakerRegistry registry(options);
  CircuitBreaker* t = registry.Get("T");
  EXPECT_EQ(t, registry.Get("T"));
  CircuitBreaker* u = registry.Get("U");
  EXPECT_NE(t, u);
  auto d = t->Admit();
  t->RecordFailure(d);
  (void)t->Admit();  // fast-fail while open
  EXPECT_EQ(registry.TotalTrips(), 1u);
  EXPECT_EQ(registry.TotalFastFails(), 1u);
  auto snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.at("T").state, BreakerState::kOpen);
  EXPECT_EQ(snapshot.at("U").state, BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// PublishingService over a small two-table database.

std::unique_ptr<Database> MakeTwoTableDb() {
  auto db = std::make_unique<Database>();
  EXPECT_TRUE(sql::ExecuteDdl(
                  "CREATE TABLE T (k INT PRIMARY KEY, v TEXT);"
                  "CREATE TABLE U (k INT PRIMARY KEY, w TEXT, tk INT,"
                  " FOREIGN KEY (tk) REFERENCES T(k))",
                  db.get())
                  .ok());
  EXPECT_TRUE(
      db->Insert("T", Tuple{Value::Int64(1), Value::String("a")}).ok());
  EXPECT_TRUE(
      db->Insert("T", Tuple{Value::Int64(2), Value::String("b")}).ok());
  EXPECT_TRUE(db->Insert("U", Tuple{Value::Int64(10), Value::String("x"),
                                    Value::Int64(1)})
                  .ok());
  EXPECT_TRUE(db->Insert("U", Tuple{Value::Int64(11), Value::String("y"),
                                    Value::Int64(1)})
                  .ok());
  EXPECT_TRUE(db->Insert("U", Tuple{Value::Int64(12), Value::String("z"),
                                    Value::Int64(2)})
                  .ok());
  return db;
}

constexpr char kTwoTableRxl[] =
    "from T $t construct <t><v>$t.v</v>"
    "{ from U $u where $t.k = $u.tk construct <u>$u.w</u> }</t>";

std::string SequentialReference(const Database* db, PlanStrategy strategy) {
  Publisher publisher(db);
  PublishOptions options;
  options.strategy = strategy;
  options.document_element = "doc";
  std::ostringstream out;
  auto result = publisher.Publish(kTwoTableRxl, options, &out);
  EXPECT_TRUE(result.ok()) << result.status();
  return out.str();
}

ServiceRequest MakeRequest(PlanStrategy strategy) {
  ServiceRequest request;
  request.rxl = kTwoTableRxl;
  request.options.strategy = strategy;
  request.options.document_element = "doc";
  return request;
}

TEST(PublishingServiceTest, ConcurrentPublishIsByteIdenticalToSequential) {
  auto db = MakeTwoTableDb();
  for (PlanStrategy strategy :
       {PlanStrategy::kUnified, PlanStrategy::kFullyPartitioned,
        PlanStrategy::kGreedy}) {
    std::string reference = SequentialReference(db.get(), strategy);
    ServiceOptions options;
    options.workers = 8;
    PublishingService service(db.get(), options);
    ServiceResponse response = service.Publish(MakeRequest(strategy));
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_FALSE(response.result.metrics.timed_out);
    EXPECT_EQ(response.xml, reference);
  }
}

TEST(PublishingServiceTest, PublishAllConcurrentRequestsAllIdentical) {
  auto db = MakeTwoTableDb();
  std::string reference =
      SequentialReference(db.get(), PlanStrategy::kFullyPartitioned);
  ServiceOptions options;
  options.workers = 8;
  PublishingService service(db.get(), options);
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 12; ++i) {
    requests.push_back(MakeRequest(PlanStrategy::kFullyPartitioned));
  }
  auto responses = service.PublishAll(std::move(requests));
  ASSERT_EQ(responses.size(), 12u);
  for (const auto& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(response.xml, reference);
  }
  auto metrics = service.metrics();
  EXPECT_EQ(metrics.completed, 12u);
  EXPECT_EQ(metrics.failed, 0u);
  EXPECT_EQ(metrics.admission.admitted, 12u);
  EXPECT_EQ(metrics.admission.shed_requests, 0u);
}

TEST(PublishingServiceTest, QueryBudgetZeroShedsWithResourceExhausted) {
  auto db = MakeTwoTableDb();
  ServiceOptions options;
  options.admission.max_in_flight_queries = 0;
  PublishingService service(db.get(), options);
  ServiceResponse response =
      service.Publish(MakeRequest(PlanStrategy::kUnified));
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  auto metrics = service.metrics();
  EXPECT_EQ(metrics.failed, 1u);
  EXPECT_GE(metrics.admission.shed_queries, 1u);
}

TEST(PublishingServiceTest, MemoryBudgetShedsWithResourceExhausted) {
  auto db = MakeTwoTableDb();
  ServiceOptions options;
  options.admission.max_buffered_bytes = 1;  // nothing fits
  PublishingService service(db.get(), options);
  ServiceResponse response =
      service.Publish(MakeRequest(PlanStrategy::kUnified));
  EXPECT_EQ(response.status.code(), StatusCode::kResourceExhausted);
  EXPECT_GE(service.metrics().admission.shed_memory, 1u);
  // The failed request released whatever it had reserved.
  EXPECT_EQ(service.metrics().admission.buffered_bytes, 0u);
}

TEST(PublishingServiceTest, RequestQueueFullShedsExcess) {
  auto db = MakeTwoTableDb();
  engine::DatabaseExecutor db_executor(db.get());
  engine::FaultPolicy policy;
  engine::FaultRule slow;
  slow.latency_ms = 100;  // keep admitted requests in flight
  policy.rules.push_back(slow);
  engine::FaultInjectingExecutor faulty(&db_executor, policy);

  ServiceOptions options;
  options.workers = 1;
  options.admission.max_pending_requests = 1;
  options.executor = &faulty;
  PublishingService service(db.get(), options);

  std::vector<std::shared_ptr<PublishTicket>> tickets;
  size_t shed = 0;
  for (int i = 0; i < 4; ++i) {
    auto ticket = service.Submit(MakeRequest(PlanStrategy::kUnified));
    if (ticket.ok()) {
      tickets.push_back(std::move(ticket).value());
    } else {
      EXPECT_EQ(ticket.status().code(), StatusCode::kResourceExhausted);
      ++shed;
    }
  }
  ASSERT_FALSE(tickets.empty());
  for (auto& ticket : tickets) {
    EXPECT_TRUE(ticket->Wait().status.ok()) << ticket->Wait().status;
  }
  EXPECT_GE(shed, 1u);
  auto metrics = service.metrics();
  EXPECT_EQ(metrics.admission.shed_requests, shed);
  EXPECT_EQ(metrics.completed, tickets.size());
}

TEST(PublishingServiceTest, SickTableTripsBreakerAndDegradesWithoutRetries) {
  auto db = MakeTwoTableDb();
  engine::DatabaseExecutor db_executor(db.get());
  engine::FaultPolicy policy;
  engine::FaultRule sick;
  sick.table = "U";
  sick.fail = true;  // permanent: every U query fails
  policy.rules.push_back(sick);
  engine::FaultInjectingExecutor faulty(&db_executor, policy);
  faulty.set_sleep_fn([](double) {});

  ServiceOptions options;
  options.workers = 4;
  options.executor = &faulty;
  options.breaker.failure_threshold = 1;
  options.breaker.open_ms = 1e9;  // stays open for the whole test
  options.retry.max_attempts = 2;
  options.retry.sleep_fn = [](double) {};
  PublishingService service(db.get(), options);

  // Request 1 learns the hard way: the U component query fails, is
  // retried, then degrades to the single-node limit and is skipped
  // best-effort. Its failure trips U's breaker.
  ServiceResponse first =
      service.Publish(MakeRequest(PlanStrategy::kFullyPartitioned));
  ASSERT_TRUE(first.status.ok()) << first.status;
  EXPECT_FALSE(first.result.metrics.failed_nodes.empty());
  EXPECT_GE(first.result.metrics.retries, 1u);
  auto breakers = service.breaker_snapshot();
  ASSERT_TRUE(breakers.count("U"));
  EXPECT_EQ(breakers.at("U").state, BreakerState::kOpen);
  EXPECT_EQ(breakers.at("T").state, BreakerState::kClosed);

  // Request 2 fast-fails at the open breaker: same best-effort document,
  // but the U query never executes and no retry budget is burned.
  int executions_before = faulty.stats().executions;
  ServiceResponse second =
      service.Publish(MakeRequest(PlanStrategy::kFullyPartitioned));
  ASSERT_TRUE(second.status.ok()) << second.status;
  EXPECT_EQ(second.xml, first.xml);
  EXPECT_GE(second.result.metrics.breaker_fast_fails, 1u);
  EXPECT_EQ(second.result.metrics.retries, 0u);
  EXPECT_EQ(second.result.metrics.failed_nodes,
            first.result.metrics.failed_nodes);
  // Only the healthy T-backed queries (<t> and <v> components) reached the
  // source; the U query was rejected at the breaker without executing.
  EXPECT_EQ(faulty.stats().executions - executions_before, 2);
  EXPECT_GE(service.metrics().breaker_trips, 1u);
  EXPECT_GE(service.metrics().breaker_fast_fails, 1u);
}

TEST(PublishingServiceTest, ExpiredDeadlineReportsTimeoutWithoutDocument) {
  auto db = MakeTwoTableDb();
  ServiceOptions options;
  PublishingService service(db.get(), options);
  ServiceRequest request = MakeRequest(PlanStrategy::kUnified);
  request.deadline_ms = 1e-6;  // expired before the first component runs
  ServiceResponse response = service.Publish(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status;
  EXPECT_TRUE(response.result.metrics.timed_out);
  EXPECT_TRUE(response.xml.empty());
  EXPECT_EQ(service.metrics().timed_out, 1u);
}

TEST(PublishingServiceTest, SubmitAfterShutdownIsUnavailable) {
  auto db = MakeTwoTableDb();
  PublishingService service(db.get(), ServiceOptions{});
  service.Shutdown();
  auto ticket = service.Submit(MakeRequest(PlanStrategy::kUnified));
  ASSERT_FALSE(ticket.ok());
  EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);
}

TEST(PublishingServiceTest, ConcurrentWaitOnSharedTicketIsSafe) {
  // Wait() hands out a shared_ptr ticket; several threads waiting on the
  // same ticket must serialize the coordinator join instead of racing it.
  auto db = MakeTwoTableDb();
  std::string reference =
      SequentialReference(db.get(), PlanStrategy::kUnified);
  PublishingService service(db.get(), ServiceOptions{});
  auto ticket = service.Submit(MakeRequest(PlanStrategy::kUnified));
  ASSERT_TRUE(ticket.ok()) << ticket.status();
  std::vector<std::string> xml(4);
  std::vector<std::thread> waiters;
  for (size_t i = 0; i < xml.size(); ++i) {
    waiters.emplace_back([&, i] { xml[i] = (*ticket)->Wait().xml; });
  }
  for (auto& waiter : waiters) waiter.join();
  for (const auto& doc : xml) EXPECT_EQ(doc, reference);
}

TEST(PublishingServiceTest, ShutdownRacingSubmitDrainsEveryAdmittedRequest) {
  // Regression for two shutdown races: a request admitted concurrently
  // with Shutdown must either be rejected (kUnavailable) or fully covered
  // by the drain, and destroying the service the moment Shutdown returns
  // must not race the coordinators' last drained-state notification.
  auto db = MakeTwoTableDb();
  for (int round = 0; round < 8; ++round) {
    ServiceOptions options;
    options.admission.max_pending_requests = 256;  // never shed, only drain
    auto service = std::make_unique<PublishingService>(db.get(), options);
    std::vector<std::vector<std::shared_ptr<PublishTicket>>> tickets(3);
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < tickets.size(); ++t) {
      submitters.emplace_back([&, t] {
        for (int i = 0; i < 16; ++i) {
          auto ticket = service->Submit(MakeRequest(PlanStrategy::kUnified));
          if (!ticket.ok()) {
            EXPECT_EQ(ticket.status().code(), StatusCode::kUnavailable);
            break;
          }
          tickets[t].push_back(std::move(ticket).value());
        }
      });
    }
    service->Shutdown();  // races the submitters by design
    for (auto& submitter : submitters) submitter.join();
    service.reset();  // every admitted coordinator is past the drain point
    for (auto& per_thread : tickets) {
      for (auto& ticket : per_thread) {
        // Every admitted request is fulfilled: completed before the
        // cancel, or kUnavailable if cancelled mid-flight.
        const ServiceResponse& response = ticket->Wait();
        if (!response.status.ok()) {
          EXPECT_EQ(response.status.code(), StatusCode::kUnavailable);
        }
      }
    }
  }
}

TEST(PublishingServiceTest, ConcurrentFaultyLoadStaysConsistent) {
  // TSan fodder: many concurrent requests over a flaky shared executor.
  auto db = MakeTwoTableDb();
  engine::DatabaseExecutor db_executor(db.get());
  engine::FaultPolicy policy;
  engine::FaultRule flaky;
  flaky.flake_probability = 0.3;  // transient, seeded
  policy.rules.push_back(flaky);
  engine::FaultInjectingExecutor faulty(&db_executor, policy);
  faulty.set_sleep_fn([](double) {});

  std::string reference =
      SequentialReference(db.get(), PlanStrategy::kFullyPartitioned);
  ServiceOptions options;
  options.workers = 8;
  options.executor = &faulty;
  options.retry.max_attempts = 10;
  options.retry.sleep_fn = [](double) {};
  PublishingService service(db.get(), options);
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 16; ++i) {
    requests.push_back(MakeRequest(PlanStrategy::kFullyPartitioned));
  }
  auto responses = service.PublishAll(std::move(requests));
  for (const auto& response : responses) {
    ASSERT_TRUE(response.status.ok()) << response.status;
    // Transient flakes are retried (or components degraded) away; the
    // document always comes out byte-identical.
    if (response.result.metrics.failed_nodes.empty()) {
      EXPECT_EQ(response.xml, reference);
    }
  }
}

}  // namespace
}  // namespace silkroute::service
