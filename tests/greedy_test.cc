#include "silkroute/greedy.h"

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>

#include "engine/estimator.h"
#include "engine/measured_oracle.h"
#include "engine/stats.h"
#include "obs/profile.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;
using testutil::MustBuildTree;
using testutil::NodeByName;

class GreedyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTinyTpch(0.01).release();
    stats_ = new engine::DatabaseStats(engine::DatabaseStats::Collect(*db_));
    tree_ = new ViewTree(MustBuildTree(Query1Rxl(), db_->catalog()));
  }
  static void TearDownTestSuite() {
    delete tree_;
    delete stats_;
    delete db_;
    tree_ = nullptr;
    stats_ = nullptr;
    db_ = nullptr;
  }

  GreedyPlan Run(const GreedyParams& params) {
    engine::CostEstimator oracle(&db_->catalog(), stats_);
    auto plan = GeneratePlanGreedy(*tree_, &oracle, params);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return plan.ok() ? std::move(plan).value() : GreedyPlan{};
  }

  static Database* db_;
  static engine::DatabaseStats* stats_;
  static ViewTree* tree_;
};

Database* GreedyTest::db_ = nullptr;
engine::DatabaseStats* GreedyTest::stats_ = nullptr;
ViewTree* GreedyTest::tree_ = nullptr;

TEST_F(GreedyTest, DefaultsReproduceFig18PlanFamily) {
  // Paper Fig. 18(b): for Query 1 the deep part/order-spine edges are
  // mandatory and the shallow supplier edges optional.
  GreedyPlan plan = Run(GreedyParams{});
  EXPECT_EQ(plan.mandatory_edges.size(), 6u);
  EXPECT_EQ(plan.optional_edges.size(), 3u);
  EXPECT_EQ(plan.PlanMasks().size(), 8u);

  auto edges = tree_->Edges();
  int order = NodeByName(*tree_, "S1.4.2");
  int part = NodeByName(*tree_, "S1.4");
  // Every edge touching the part or order node is mandatory; the shallow
  // name/nation/region edges are optional.
  for (size_t e = 0; e < edges.size(); ++e) {
    bool is_spine_edge = edges[e].first == order || edges[e].second == order ||
                         edges[e].first == part || edges[e].second == part;
    bool is_mandatory =
        std::find(plan.mandatory_edges.begin(), plan.mandatory_edges.end(),
                  e) != plan.mandatory_edges.end();
    EXPECT_EQ(is_spine_edge, is_mandatory) << "edge " << e;
  }
}

TEST_F(GreedyTest, ThresholdsPartitionEdges) {
  // Very permissive t1: everything mandatory.
  GreedyParams all;
  all.t1 = 1e18;
  GreedyPlan plan = Run(all);
  EXPECT_EQ(plan.mandatory_edges.size(), tree_->num_edges());
  EXPECT_TRUE(plan.optional_edges.empty());
  EXPECT_EQ(plan.FullMask(), Partition::Unified(*tree_).mask());

  // Impossible thresholds: nothing merges.
  GreedyParams none;
  none.t1 = -1e18;
  none.t2 = -1e18;
  plan = Run(none);
  EXPECT_TRUE(plan.mandatory_edges.empty());
  EXPECT_TRUE(plan.optional_edges.empty());
  EXPECT_EQ(plan.PlanMasks(), (std::vector<uint64_t>{0}));
}

TEST_F(GreedyTest, PlanMasksEnumerateOptionalSubsets) {
  GreedyPlan plan;
  plan.mandatory_edges = {0, 2};
  plan.optional_edges = {4, 7};
  auto masks = plan.PlanMasks();
  ASSERT_EQ(masks.size(), 4u);
  uint64_t base = (1u << 0) | (1u << 2);
  EXPECT_EQ(masks[0], base);
  EXPECT_EQ(masks[3], base | (1u << 4) | (1u << 7));
  EXPECT_EQ(plan.FullMask(), masks[3]);
}

TEST_F(GreedyTest, OracleRequestsFarBelowQuadraticBound) {
  // Paper Sec. 5.1: far fewer than |E|^2 = 81 requests thanks to caching.
  GreedyPlan plan = Run(GreedyParams{});
  EXPECT_GT(plan.oracle_requests, 0u);
  EXPECT_LT(plan.oracle_requests, 81u);
}

TEST_F(GreedyTest, ReducedAndNonReducedBothProducePlans) {
  GreedyParams nored;
  nored.reduce = false;
  GreedyPlan plan = Run(nored);
  EXPECT_GT(plan.mandatory_edges.size() + plan.optional_edges.size(), 0u);
}

TEST_F(GreedyTest, OuterUnionStyleSupported) {
  GreedyParams params;
  params.style = SqlGenStyle::kOuterUnion;
  GreedyPlan plan = Run(params);
  EXPECT_GT(plan.mandatory_edges.size() + plan.optional_edges.size(), 0u);
}

TEST_F(GreedyTest, DeepestEdgesMergeFirst) {
  // The relative-cost ranking merges the most beneficial (deepest) edges
  // first; with a threshold that admits only the single best edge class,
  // only order-subtree edges appear.
  GreedyParams params;
  params.t1 = -3e6;
  params.t2 = -3e6;
  GreedyPlan plan = Run(params);
  ASSERT_FALSE(plan.mandatory_edges.empty());
  auto edges = tree_->Edges();
  int order = NodeByName(*tree_, "S1.4.2");
  for (size_t e : plan.mandatory_edges) {
    EXPECT_EQ(edges[e].first, order);
  }
}

TEST_F(GreedyTest, ToStringRendersEdges) {
  GreedyPlan plan = Run(GreedyParams{});
  std::string s = plan.ToString(*tree_);
  EXPECT_NE(s.find("mandatory"), std::string::npos);
  EXPECT_NE(s.find("S1.4.2-S1.4.2.1"), std::string::npos);
}

/// CostOracle shim that records the normalized text of every SQL the
/// greedy search probes, so a test can "run the workload" the plan implies.
class CapturingOracle : public engine::CostOracle {
 public:
  explicit CapturingOracle(engine::CostOracle* inner) : inner_(inner) {}
  Result<engine::QueryEstimate> EstimateSql(std::string_view sql) override {
    seen.insert(obs::NormalizeSql(sql));
    return inner_->EstimateSql(sql);
  }
  std::set<std::string> seen;

 private:
  engine::CostOracle* const inner_;
};

TEST_F(GreedyTest, ObservedProfileOverlayChangesThePlan) {
  // Synthetic baseline: Fig. 18(b)'s 6 mandatory + 3 optional edges.
  GreedyPlan synthetic_plan = Run(GreedyParams{});
  ASSERT_EQ(synthetic_plan.mandatory_edges.size(), 6u);
  ASSERT_EQ(synthetic_plan.optional_edges.size(), 3u);

  // An observed workload the synthetic model disagrees with: every
  // component query costs a flat 100 ms regardless of shape (per-query
  // overhead dominates — common when the RDBMS round-trip is the cost).
  // Then merging any two queries saves a whole round-trip: relative cost
  // ~ a*(C - 2C) = -1e7, far below t1 = -3e5, so the measured overlay
  // must promote every edge to mandatory. The profile reaches the merged
  // candidates by fixpoint: re-plan, record every SQL the search probed
  // at the observed cost, repeat until no new text appears.
  obs::WorkloadProfile profile;
  engine::CostEstimator synthetic(&db_->catalog(), stats_);
  std::set<std::string> known;
  GreedyPlan measured_plan;
  uint64_t final_overlay_hits = 0;
  for (int round = 0; round < 16; ++round) {
    engine::MeasuredCostOracle overlay(&synthetic, &profile);
    CapturingOracle capture(&overlay);
    auto plan = GeneratePlanGreedy(*tree_, &capture, GreedyParams{});
    ASSERT_TRUE(plan.ok()) << plan.status();
    measured_plan = std::move(plan).value();
    final_overlay_hits = overlay.overlay_hits();
    size_t before = known.size();
    for (const auto& sql : capture.seen) {
      if (known.insert(sql).second) profile.RecordQuery(sql, 100.0, 1, 1);
    }
    if (known.size() == before) break;  // fixpoint: profile covers the search
  }
  EXPECT_GT(final_overlay_hits, 0u);
  EXPECT_EQ(measured_plan.mandatory_edges.size(), tree_->num_edges());
  EXPECT_TRUE(measured_plan.optional_edges.empty());
  // The chosen plan demonstrably changed: one fully-unified query set
  // instead of 2^3 candidate plans over the optional supplier edges.
  EXPECT_NE(measured_plan.PlanMasks(), synthetic_plan.PlanMasks());

  // Different plan, same document: the mask only re-partitions the view
  // into SQL components, so both plans' XML must match byte for byte.
  Publisher publisher(db_);
  PublishOptions options;
  std::ostringstream synthetic_xml;
  std::ostringstream measured_xml;
  auto a = publisher.ExecutePlan(*tree_, synthetic_plan.PlanMasks().front(),
                                 options, &synthetic_xml);
  ASSERT_TRUE(a.ok()) << a.status();
  auto b = publisher.ExecutePlan(*tree_, measured_plan.FullMask(), options,
                                 &measured_xml);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(synthetic_xml.str(), measured_xml.str());
  EXPECT_FALSE(synthetic_xml.str().empty());
}

TEST_F(GreedyTest, Query2PlansParallelStarEdges) {
  ViewTree tree2 = MustBuildTree(Query2Rxl(), db_->catalog());
  engine::CostEstimator oracle(&db_->catalog(), stats_);
  auto plan = GeneratePlanGreedy(tree2, &oracle, GreedyParams{});
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The order subtree (under the supplier) merges mandatorily here too.
  EXPECT_GE(plan->mandatory_edges.size(), 3u);
  EXPECT_GE(plan->PlanMasks().size(), 1u);
  EXPECT_LT(plan->oracle_requests, 81u);
}

}  // namespace
}  // namespace silkroute::core
