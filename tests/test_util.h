// Shared fixtures for SilkRoute core tests.
#ifndef SILKROUTE_TESTS_TEST_UTIL_H_
#define SILKROUTE_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <memory>

#include "relational/database.h"
#include "rxl/parser.h"
#include "silkroute/view_tree.h"
#include "tpch/generator.h"

namespace silkroute::core::testutil {

/// A small, deterministic TPC-H instance (shared per test suite).
/// `shard_count` selects the columnar shard fan-out for every base table;
/// the default matches Database's own default so existing callers see the
/// same layout either way.
inline std::unique_ptr<Database> MakeTinyTpch(double scale = 0.002,
                                              size_t shard_count = 4) {
  auto db = std::make_unique<Database>();
  db->set_default_shard_count(shard_count);
  tpch::TpchConfig config;
  config.scale_factor = scale;
  Status s = tpch::GenerateTpch(config, db.get());
  EXPECT_TRUE(s.ok()) << s;
  return db;
}

/// Parses RXL and builds the labeled view tree against `catalog`.
inline ViewTree MustBuildTree(std::string_view rxl_text,
                              const Catalog& catalog) {
  auto parsed = rxl::ParseRxl(rxl_text);
  EXPECT_TRUE(parsed.ok()) << parsed.status();
  auto tree = ViewTree::Build(*parsed, catalog);
  EXPECT_TRUE(tree.ok()) << tree.status();
  return std::move(tree).value();
}

/// Finds a node id by Skolem name ("S1.4.2"); -1 if absent.
inline int NodeByName(const ViewTree& tree, const std::string& name) {
  for (const auto& n : tree.nodes()) {
    if (n.skolem_name == name) return n.id;
  }
  return -1;
}

}  // namespace silkroute::core::testutil

#endif  // SILKROUTE_TESTS_TEST_UTIL_H_
