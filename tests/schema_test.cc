#include <gtest/gtest.h>

#include "relational/catalog.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "relational/table.h"

namespace silkroute {
namespace {

TableSchema MakeSupplier() {
  TableSchema s("Supplier", {
                                {"suppkey", DataType::kInt64, false},
                                {"name", DataType::kString, false},
                                {"nationkey", DataType::kInt64, false},
                            });
  EXPECT_TRUE(s.SetPrimaryKey({"suppkey"}).ok());
  EXPECT_TRUE(
      s.AddForeignKey({{"nationkey"}, "Nation", {"nationkey"}}).ok());
  return s;
}

TableSchema MakeNation() {
  TableSchema s("Nation", {
                              {"nationkey", DataType::kInt64, false},
                              {"name", DataType::kString, false},
                          });
  EXPECT_TRUE(s.SetPrimaryKey({"nationkey"}).ok());
  return s;
}

TEST(TableSchemaTest, ColumnLookup) {
  TableSchema s = MakeSupplier();
  EXPECT_EQ(s.num_columns(), 3u);
  EXPECT_TRUE(s.HasColumn("name"));
  EXPECT_FALSE(s.HasColumn("addr"));
  auto idx = s.ColumnIndex("nationkey");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_EQ(s.ColumnIndex("missing").status().code(), StatusCode::kNotFound);
}

TEST(TableSchemaTest, PrimaryKeyValidation) {
  TableSchema s("T", {{"a", DataType::kInt64, false}});
  EXPECT_EQ(s.SetPrimaryKey({"b"}).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(s.SetPrimaryKey({"a"}).ok());
  EXPECT_TRUE(s.has_primary_key());
}

TEST(TableSchemaTest, ForeignKeyValidation) {
  TableSchema s = MakeSupplier();
  EXPECT_EQ(s.AddForeignKey({{"missing"}, "Nation", {"nationkey"}}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      s.AddForeignKey({{"nationkey"}, "Nation", {"a", "b"}}).code(),
      StatusCode::kInvalidArgument);
}

TEST(TableSchemaTest, IsSuperkey) {
  TableSchema s = MakeSupplier();
  EXPECT_TRUE(s.IsSuperkey({"suppkey"}));
  EXPECT_TRUE(s.IsSuperkey({"name", "suppkey"}));
  EXPECT_FALSE(s.IsSuperkey({"name"}));
  TableSchema keyless("K", {{"a", DataType::kInt64, false}});
  EXPECT_FALSE(keyless.IsSuperkey({"a"}));
}

TEST(TableSchemaTest, DatalogRendering) {
  EXPECT_EQ(MakeSupplier().ToString(),
            "Supplier(*suppkey, name, nationkey)");
}

TEST(CatalogTest, AddAndLookup) {
  Catalog c;
  EXPECT_TRUE(c.AddTable(MakeSupplier()).ok());
  EXPECT_TRUE(c.HasTable("Supplier"));
  EXPECT_FALSE(c.HasTable("Nope"));
  EXPECT_EQ(c.AddTable(MakeSupplier()).code(), StatusCode::kAlreadyExists);
  auto t = c.GetTable("Supplier");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "Supplier");
}

TEST(CatalogTest, InclusionDependencyRequiresDeclaredFk) {
  Catalog c;
  ASSERT_TRUE(c.AddTable(MakeSupplier()).ok());
  ASSERT_TRUE(c.AddTable(MakeNation()).ok());
  EXPECT_TRUE(c.HasInclusionDependency("Supplier", {"nationkey"}, "Nation"));
  EXPECT_FALSE(c.HasInclusionDependency("Supplier", {"name"}, "Nation"));
  EXPECT_FALSE(c.HasInclusionDependency("Nation", {"nationkey"}, "Supplier"));
}

TEST(CatalogTest, FindForeignKeyIsOrderInsensitive) {
  Catalog c;
  TableSchema li("LineItem", {
                                 {"partkey", DataType::kInt64, false},
                                 {"suppkey", DataType::kInt64, false},
                             });
  ASSERT_TRUE(
      li.AddForeignKey({{"partkey", "suppkey"}, "PartSupp",
                        {"partkey", "suppkey"}})
          .ok());
  ASSERT_TRUE(c.AddTable(std::move(li)).ok());
  EXPECT_NE(c.FindForeignKey("LineItem", {"suppkey", "partkey"}), nullptr);
  EXPECT_EQ(c.FindForeignKey("LineItem", {"partkey"}), nullptr);
}

TEST(TableTest, InsertValidRow) {
  Table t(MakeSupplier());
  EXPECT_TRUE(
      t.Insert(Tuple{Value::Int64(1), Value::String("a"), Value::Int64(2)})
          .ok());
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TableTest, RejectsArityMismatch) {
  Table t(MakeSupplier());
  EXPECT_EQ(t.Insert(Tuple{Value::Int64(1)}).code(),
            StatusCode::kInvalidArgument);
}

TEST(TableTest, RejectsTypeMismatch) {
  Table t(MakeSupplier());
  EXPECT_EQ(t.Insert(Tuple{Value::String("x"), Value::String("a"),
                           Value::Int64(2)})
                .code(),
            StatusCode::kTypeError);
}

TEST(TableTest, RejectsNullInNonNullable) {
  Table t(MakeSupplier());
  EXPECT_EQ(
      t.Insert(Tuple{Value::Int64(1), Value::Null(), Value::Int64(2)}).code(),
      StatusCode::kConstraintViolation);
}

TEST(TableTest, AllowsNullInNullableColumn) {
  TableSchema s("T", {{"a", DataType::kInt64, false},
                      {"b", DataType::kString, true}});
  ASSERT_TRUE(s.SetPrimaryKey({"a"}).ok());
  Table t(s);
  EXPECT_TRUE(t.Insert(Tuple{Value::Int64(1), Value::Null()}).ok());
}

TEST(TableTest, IntAcceptedForDoubleColumn) {
  TableSchema s("T", {{"d", DataType::kDouble, false}});
  Table t(s);
  EXPECT_TRUE(t.Insert(Tuple{Value::Int64(3)}).ok());
}

TEST(TableTest, RejectsDuplicatePrimaryKey) {
  Table t(MakeSupplier());
  ASSERT_TRUE(
      t.Insert(Tuple{Value::Int64(1), Value::String("a"), Value::Int64(2)})
          .ok());
  EXPECT_EQ(
      t.Insert(Tuple{Value::Int64(1), Value::String("b"), Value::Int64(3)})
          .code(),
      StatusCode::kConstraintViolation);
}

TEST(TableTest, CompositeKeyUniqueness) {
  TableSchema s("PS", {{"p", DataType::kInt64, false},
                       {"s", DataType::kInt64, false}});
  ASSERT_TRUE(s.SetPrimaryKey({"p", "s"}).ok());
  Table t(s);
  EXPECT_TRUE(t.Insert(Tuple{Value::Int64(1), Value::Int64(1)}).ok());
  EXPECT_TRUE(t.Insert(Tuple{Value::Int64(1), Value::Int64(2)}).ok());
  EXPECT_EQ(t.Insert(Tuple{Value::Int64(1), Value::Int64(1)}).code(),
            StatusCode::kConstraintViolation);
}

TEST(TableTest, DataByteSize) {
  Table t(MakeSupplier());
  ASSERT_TRUE(
      t.Insert(Tuple{Value::Int64(1), Value::String("abcd"), Value::Int64(2)})
          .ok());
  EXPECT_EQ(t.DataByteSize(), 8u + 8u + 8u);
}

TEST(DatabaseTest, CreateAndInsert) {
  Database db;
  ASSERT_TRUE(db.CreateTable(MakeSupplier()).ok());
  EXPECT_EQ(db.CreateTable(MakeSupplier()).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(
      db.Insert("Supplier",
                Tuple{Value::Int64(1), Value::String("a"), Value::Int64(2)})
          .ok());
  EXPECT_EQ(db.Insert("Missing", Tuple{}).code(), StatusCode::kNotFound);
  auto t = db.GetTable("Supplier");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 1u);
  EXPECT_GT(db.TotalByteSize(), 0u);
}

TEST(DatabaseTest, CatalogReflectsTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable(MakeNation()).ok());
  EXPECT_TRUE(db.catalog().HasTable("Nation"));
  EXPECT_EQ(db.catalog().TableNames(),
            (std::vector<std::string>{"Nation"}));
}

}  // namespace
}  // namespace silkroute
