// Byte-identity tests for the published XML. The packed-key hot path, the
// borrowed/fused executor plans, and the buffered writer are pure
// optimizations: every plan in the edge-mask lattice must emit exactly the
// bytes the unoptimized pipeline emitted (goldens checked in from the seed
// build), serially and through the concurrent PublishingService.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "relational/csv.h"
#include "relational/database.h"
#include "service/publishing_service.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "sql/ddl.h"
#include "tests/test_util.h"

namespace silkroute::core {
namespace {

namespace testutil = core::testutil;

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string GoldenPath(const std::string& name) {
  return std::string(SILK_TEST_SOURCE_DIR) + "/golden/" + name;
}

std::string DemoPath(const std::string& name) {
  return std::string(SILK_TEST_SOURCE_DIR) + "/../examples/demo/" + name;
}

/// Loads examples/demo exactly the way the CLI does (DDL + per-table CSVs).
void LoadDemo(Database* db) {
  auto created = sql::ExecuteDdl(ReadFileOrDie(DemoPath("schema.sql")), db);
  ASSERT_TRUE(created.ok()) << created.status();
  for (const std::string& table : db->catalog().TableNames()) {
    std::string path = DemoPath(table + ".csv");
    std::ifstream probe(path);
    if (!probe.is_open()) continue;
    auto loaded = LoadCsvFile(path, CsvLoadOptions{}, table, db);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
  }
}

std::string PublishSerial(Publisher* publisher, const std::string& rxl,
                          const PublishOptions& options) {
  std::ostringstream out;
  auto result = publisher->Publish(rxl, options, &out);
  EXPECT_TRUE(result.ok()) << result.status();
  return out.str();
}

// The demo league document must match the golden produced by
// `silkroute --schema schema.sql --view view.rxl --root league`.
TEST(GoldenXmlTest, DemoLeagueMatchesGolden) {
  Database db;
  LoadDemo(&db);
  Publisher publisher(&db);
  PublishOptions options;
  options.document_element = "league";
  std::string xml =
      PublishSerial(&publisher, ReadFileOrDie(DemoPath("view.rxl")), options);
  EXPECT_EQ(xml, ReadFileOrDie(GoldenPath("demo_league.xml")));
}

// Every edge mask of the demo view's (small) lattice must emit the same
// bytes: partitioning is a physical choice, never a semantic one.
TEST(GoldenXmlTest, DemoLatticeIsByteIdentical) {
  Database db;
  LoadDemo(&db);
  Publisher publisher(&db);
  const std::string rxl = ReadFileOrDie(DemoPath("view.rxl"));
  auto tree = publisher.BuildViewTree(rxl);
  ASSERT_TRUE(tree.ok()) << tree.status();
  const uint64_t full = (uint64_t{1} << tree->num_edges()) - 1;

  PublishOptions options;
  options.document_element = "league";
  options.collect_sql = false;
  std::string reference;
  for (uint64_t mask = 0; mask <= full; ++mask) {
    std::ostringstream out;
    auto metrics = publisher.ExecutePlan(*tree, mask, options, &out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    if (mask == 0) {
      reference = out.str();
      EXPECT_EQ(reference, ReadFileOrDie(GoldenPath("demo_league.xml")));
    } else {
      EXPECT_EQ(out.str(), reference) << "mask 0x" << std::hex << mask;
    }
  }
}

// The TPC-H Query 1 document at scale 0.002 for the mask the greedy
// planner favors, against the seed golden.
TEST(GoldenXmlTest, Query1MatchesGolden) {
  auto db = testutil::MakeTinyTpch();
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  ASSERT_TRUE(tree.ok()) << tree.status();
  PublishOptions options;
  options.collect_sql = false;
  std::ostringstream out;
  auto metrics = publisher.ExecutePlan(*tree, 0x1E8, options, &out);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(out.str(), ReadFileOrDie(GoldenPath("query1_scale0002.xml")));
}

// Sampled masks across Query 1's lattice, published serially and through
// the PublishingService with 8 workers: all byte-identical to the serial
// unified plan. This is the acceptance gate for the whole hot path — the
// pooled execution strategy reorders component *execution*, never bytes.
TEST(GoldenXmlTest, Query1LatticeSerialAndConcurrentAreByteIdentical) {
  auto db = testutil::MakeTinyTpch();
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  ASSERT_TRUE(tree.ok()) << tree.status();
  const uint64_t full = (uint64_t{1} << tree->num_edges()) - 1;
  std::vector<uint64_t> masks = {0, full, 0x1E8 & full, 0x155 & full,
                                 0x0AA & full, 0x013 & full};

  PublishOptions base;
  base.collect_sql = false;

  // Serial reference from the unified (all-edges) plan.
  std::string reference;
  {
    std::ostringstream out;
    auto metrics = publisher.ExecutePlan(*tree, full, base, &out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    reference = out.str();
  }

  // Every sampled mask, serially.
  for (uint64_t mask : masks) {
    std::ostringstream out;
    auto metrics = publisher.ExecutePlan(*tree, mask, base, &out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    EXPECT_EQ(out.str(), reference) << "serial mask 0x" << std::hex << mask;
  }

  // Every sampled mask, concurrently: one in-flight request per mask over
  // an 8-worker pool.
  service::ServiceOptions service_options;
  service_options.workers = 8;
  service_options.admission.max_pending_requests = masks.size() + 1;
  service::PublishingService svc(db.get(), service_options);
  std::vector<service::ServiceRequest> requests;
  for (uint64_t mask : masks) {
    service::ServiceRequest req;
    req.rxl = std::string(Query1Rxl());
    req.options = base;
    req.options.strategy = PlanStrategy::kExplicitMask;
    req.options.explicit_mask = mask;
    requests.push_back(std::move(req));
  }
  std::vector<service::ServiceResponse> responses =
      svc.PublishAll(std::move(requests));
  ASSERT_EQ(responses.size(), masks.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok())
        << "mask 0x" << std::hex << masks[i] << ": " << responses[i].status;
    EXPECT_EQ(responses[i].xml, reference)
        << "concurrent mask 0x" << std::hex << masks[i];
  }
}

// Morsel-driven parallelism (DESIGN.md §11) is another pure optimization:
// the demo lattice must emit identical bytes at any engine-thread count.
// The demo tables are far below the parallel threshold, so a configured
// executor with tiny morsels and a floor threshold forces every operator
// through the parallel paths instead of the size short-circuit.
TEST(GoldenXmlTest, DemoLatticeByteIdenticalAcrossEngineThreads) {
  Database db;
  LoadDemo(&db);
  const std::string rxl = ReadFileOrDie(DemoPath("view.rxl"));
  const std::string golden = ReadFileOrDie(GoldenPath("demo_league.xml"));

  for (int threads : {1, 2, 8}) {
    engine::DatabaseExecutor executor(&db);
    executor.set_parallelism(threads);
    executor.set_morsel_rows(/*morsel_rows=*/3, /*parallel_threshold=*/1);

    Publisher publisher(&db);
    auto tree = publisher.BuildViewTree(rxl);
    ASSERT_TRUE(tree.ok()) << tree.status();
    const uint64_t full = (uint64_t{1} << tree->num_edges()) - 1;

    PublishOptions options;
    options.document_element = "league";
    options.collect_sql = false;
    options.executor = &executor;
    for (uint64_t mask = 0; mask <= full; ++mask) {
      std::ostringstream out;
      auto metrics = publisher.ExecutePlan(*tree, mask, options, &out);
      ASSERT_TRUE(metrics.ok())
          << "threads " << threads << " mask 0x" << std::hex << mask << ": "
          << metrics.status();
      EXPECT_EQ(out.str(), golden)
          << "threads " << threads << " mask 0x" << std::hex << mask;
    }
  }
}

// Query 1 over tiny TPC-H crosses the default parallel threshold on
// lineitem, so the PublishOptions::engine_threads knob alone exercises the
// production configuration: sampled lattice masks at 1/2/8 engine threads,
// serially and through an 8-worker PublishingService whose own executor
// runs 8-way morsel parallelism. Bytes must never change.
TEST(GoldenXmlTest, Query1LatticeByteIdenticalAcrossEngineThreads) {
  auto db = testutil::MakeTinyTpch();
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  ASSERT_TRUE(tree.ok()) << tree.status();
  const uint64_t full = (uint64_t{1} << tree->num_edges()) - 1;
  const std::vector<uint64_t> masks = {0, full, 0x1E8 & full, 0x0AA & full};
  const std::string reference = ReadFileOrDie(GoldenPath("query1_scale0002.xml"));

  for (int threads : {1, 2, 8}) {
    PublishOptions options;
    options.collect_sql = false;
    options.engine_threads = threads;
    for (uint64_t mask : masks) {
      std::ostringstream out;
      auto metrics = publisher.ExecutePlan(*tree, mask, options, &out);
      ASSERT_TRUE(metrics.ok())
          << "threads " << threads << " mask 0x" << std::hex << mask << ": "
          << metrics.status();
      EXPECT_EQ(out.str(), reference)
          << "threads " << threads << " mask 0x" << std::hex << mask;
    }
  }

  // Service workers and engine threads composed: 8 coordinator workers,
  // each component query fanning morsels onto the engine's own 8-lane pool.
  service::ServiceOptions service_options;
  service_options.workers = 8;
  service_options.engine_threads = 8;
  service_options.admission.max_pending_requests = masks.size() + 1;
  service::PublishingService svc(db.get(), service_options);
  std::vector<service::ServiceRequest> requests;
  for (uint64_t mask : masks) {
    service::ServiceRequest req;
    req.rxl = std::string(Query1Rxl());
    req.options.collect_sql = false;
    req.options.strategy = PlanStrategy::kExplicitMask;
    req.options.explicit_mask = mask;
    requests.push_back(std::move(req));
  }
  std::vector<service::ServiceResponse> responses =
      svc.PublishAll(std::move(requests));
  ASSERT_EQ(responses.size(), masks.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    ASSERT_TRUE(responses[i].status.ok())
        << "mask 0x" << std::hex << masks[i] << ": " << responses[i].status;
    EXPECT_EQ(responses[i].xml, reference)
        << "service mask 0x" << std::hex << masks[i];
  }
}

// The sharded columnar layout (DESIGN.md §16) is a storage choice, not a
// semantic one: the goldens were produced by the row-major seed build, so
// publishing at shard counts 1 and 16 (every other test runs the default 4)
// must still reproduce them byte-for-byte — through the columnar scan,
// join-key, and projection fast paths alike.
TEST(GoldenXmlTest, DemoLeagueByteIdenticalAcrossShardCounts) {
  const std::string golden = ReadFileOrDie(GoldenPath("demo_league.xml"));
  for (size_t shard_count : {size_t{1}, size_t{16}}) {
    Database db;
    db.set_default_shard_count(shard_count);
    LoadDemo(&db);
    Publisher publisher(&db);
    PublishOptions options;
    options.document_element = "league";
    std::string xml =
        PublishSerial(&publisher, ReadFileOrDie(DemoPath("view.rxl")), options);
    EXPECT_EQ(xml, golden) << "shards=" << shard_count;
  }
}

TEST(GoldenXmlTest, Query1ByteIdenticalAcrossShardCounts) {
  const std::string golden =
      ReadFileOrDie(GoldenPath("query1_scale0002.xml"));
  for (size_t shard_count : {size_t{1}, size_t{16}}) {
    auto db = testutil::MakeTinyTpch(0.002, shard_count);
    Publisher publisher(db.get());
    auto tree = publisher.BuildViewTree(Query1Rxl());
    ASSERT_TRUE(tree.ok()) << tree.status();
    PublishOptions options;
    options.collect_sql = false;
    std::ostringstream out;
    auto metrics = publisher.ExecutePlan(*tree, 0x1E8, options, &out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    EXPECT_EQ(out.str(), golden) << "shards=" << shard_count;
  }
}

}  // namespace
}  // namespace silkroute::core
