// FederatedExecutor tests: table-keyed routing, breaker-gated failover to
// the local backend with byte-identical XML, recovery after the remote
// heals (injected breaker clock), and the full PublishingService running
// over a federated execution stack.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "engine/fault_injection.h"
#include "service/federated_executor.h"
#include "service/publishing_service.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "sql/ddl.h"
#include "tests/test_util.h"

namespace silkroute::service {
namespace {

using core::PlanStrategy;
using core::Publisher;
using core::PublishOptions;

TEST(SqlReferencesTableTest, MatchesWholeIdentifiersOnly) {
  EXPECT_TRUE(SqlReferencesTable("select * from Orders o", "Orders"));
  EXPECT_TRUE(SqlReferencesTable("from Orders", "Orders"));
  EXPECT_TRUE(SqlReferencesTable("join Orders on x", "Orders"));
  // Substrings of longer identifiers must not match.
  EXPECT_FALSE(SqlReferencesTable("select * from OrdersArchive", "Orders"));
  EXPECT_FALSE(SqlReferencesTable("select o.BackOrders from T o", "Orders"));
  EXPECT_FALSE(SqlReferencesTable("", "Orders"));
  EXPECT_FALSE(SqlReferencesTable("select 1", ""));
}

// ---------------------------------------------------------------------------
// A controllable fake backend: counts calls, fails on demand.

class FakeExecutor : public engine::SqlExecutor {
 public:
  explicit FakeExecutor(engine::SqlExecutor* inner) : inner_(inner) {}

  Result<engine::Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlWithDeadline(sql, 0);
  }
  Result<engine::Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                                  double timeout_ms) override {
    calls.fetch_add(1);
    if (fail_with.load() != StatusCode::kOk) {
      return Status(fail_with.load(), "injected backend failure");
    }
    return inner_->ExecuteSqlWithDeadline(sql, timeout_ms);
  }
  void set_timeout_ms(double) override {}

  std::atomic<int> calls{0};
  std::atomic<StatusCode> fail_with{StatusCode::kOk};

 private:
  engine::SqlExecutor* inner_;
};

struct FederationFixture {
  std::unique_ptr<Database> db;
  engine::DatabaseExecutor local;
  engine::DatabaseExecutor remote_inner;
  FakeExecutor remote;
  double now = 0;

  FederationFixture()
      : db(core::testutil::MakeTinyTpch(0.002)),
        local(db.get()),
        remote_inner(db.get()),
        remote(&remote_inner) {}

  FederatedExecutorOptions Options(std::vector<std::string> remote_tables) {
    FederatedExecutorOptions options;
    options.local = &local;
    options.remotes.push_back({"east", &remote, std::move(remote_tables)});
    options.breaker.failure_threshold = 2;
    options.breaker.open_ms = 100;
    options.breaker.now_ms = [this] { return now; };
    return options;
  }
};

TEST(FederatedExecutorTest, RoutesByTableOwnership) {
  FederationFixture f;
  FederatedExecutor fed(f.Options({"Supplier", "PartSupp"}));
  EXPECT_EQ(fed.RouteFor("select * from Supplier s"), "east");
  EXPECT_EQ(fed.RouteFor("select * from PartSupp ps"), "east");
  EXPECT_EQ(fed.RouteFor("select * from Orders o"), "local");
  EXPECT_EQ(fed.RouteFor("select * from SupplierX"), "local");

  auto remote_result = fed.ExecuteSql("select suppkey from Supplier");
  ASSERT_TRUE(remote_result.ok()) << remote_result.status();
  EXPECT_EQ(f.remote.calls.load(), 1);
  EXPECT_EQ(fed.remote_queries(), 1u);

  auto local_result = fed.ExecuteSql("select orderkey from Orders");
  ASSERT_TRUE(local_result.ok()) << local_result.status();
  EXPECT_EQ(f.remote.calls.load(), 1);  // untouched
  EXPECT_EQ(fed.local_queries(), 1u);
}

TEST(FederatedExecutorTest, CatchAllRemoteClaimsEverything) {
  FederationFixture f;
  FederatedExecutor fed(f.Options({}));  // empty table list = catch-all
  EXPECT_EQ(fed.RouteFor("select * from Orders"), "east");
}

TEST(FederatedExecutorTest, SourceFailureFailsOverAndIsIdentical) {
  FederationFixture f;
  FederatedExecutor fed(f.Options({"Supplier"}));
  const std::string sql_fixed =
      "select suppkey from Supplier order by suppkey";

  auto healthy = fed.ExecuteSql(sql_fixed);
  ASSERT_TRUE(healthy.ok()) << healthy.status();

  f.remote.fail_with.store(StatusCode::kUnavailable);
  auto failed_over = fed.ExecuteSql(sql_fixed);
  ASSERT_TRUE(failed_over.ok()) << failed_over.status();
  EXPECT_EQ(fed.failovers(), 1u);
  // Both backends serve the same logical data: identical relations.
  ASSERT_EQ(failed_over->rows.size(), healthy->rows.size());
  for (size_t i = 0; i < healthy->rows.size(); ++i) {
    EXPECT_EQ(failed_over->rows[i], healthy->rows[i]);
  }
}

TEST(FederatedExecutorTest, BreakerTripsThenFastFailsWithoutTouchingRemote) {
  FederationFixture f;
  FederatedExecutor fed(f.Options({"Supplier"}));
  f.remote.fail_with.store(StatusCode::kUnavailable);
  const std::string sql = "select suppkey from Supplier";

  // failure_threshold = 2: two source failures trip the breaker.
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());  // failover each time
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  EXPECT_EQ(f.remote.calls.load(), 2);
  EXPECT_EQ(fed.breakers()->Get("east")->state(), BreakerState::kOpen);

  // While open, the remote is not touched at all: pure fast-fail failover.
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  EXPECT_EQ(f.remote.calls.load(), 2);
  EXPECT_EQ(fed.fast_fail_failovers(), 2u);
  EXPECT_EQ(fed.failovers(), 4u);
}

TEST(FederatedExecutorTest, RemoteRecoveryRestoresRemoteRouting) {
  FederationFixture f;
  FederatedExecutor fed(f.Options({"Supplier"}));
  const std::string sql = "select suppkey from Supplier";

  f.remote.fail_with.store(StatusCode::kUnavailable);
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  ASSERT_EQ(fed.breakers()->Get("east")->state(), BreakerState::kOpen);

  // The remote heals; after open_ms the breaker admits a probe, the probe
  // succeeds, and traffic returns to the remote.
  f.remote.fail_with.store(StatusCode::kOk);
  f.now += 150;  // past open_ms = 100
  int calls_before = f.remote.calls.load();
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  EXPECT_EQ(f.remote.calls.load(), calls_before + 1);  // the probe ran remote
  EXPECT_EQ(fed.breakers()->Get("east")->state(), BreakerState::kClosed);
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  EXPECT_EQ(f.remote.calls.load(), calls_before + 2);
}

TEST(FederatedExecutorTest, NonSourceErrorDoesNotFailOverOrTrip) {
  FederationFixture f;
  FederatedExecutor fed(f.Options({"Supplier"}));
  f.remote.fail_with.store(StatusCode::kInternal);
  auto result = fed.ExecuteSql("select suppkey from Supplier");
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(fed.failovers(), 0u);
  EXPECT_EQ(fed.breakers()->Get("east")->state(), BreakerState::kClosed);
}

TEST(FederatedExecutorTest, UnhealthyBackendIsSkippedWithoutBreakerEvidence) {
  // A backend whose executor reports Healthy()==false (a fully ejected
  // replica set) is routed around: local fallback serves, the backend
  // breaker records nothing (the skip is routing, not evidence), and when
  // the health hint flips back the backend serves again with no
  // federation-side state to unwind.
  class UnhealthyToggle : public FakeExecutor {
   public:
    using FakeExecutor::FakeExecutor;
    bool Healthy() const override { return healthy.load(); }
    std::atomic<bool> healthy{true};
  };

  FederationFixture f;
  UnhealthyToggle remote(&f.remote_inner);
  FederatedExecutorOptions options;
  options.local = &f.local;
  options.remotes.push_back({"east", &remote, {"Supplier"}});
  options.breaker.failure_threshold = 2;
  FederatedExecutor fed(std::move(options));
  const std::string sql = "select suppkey from Supplier order by suppkey";

  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  ASSERT_EQ(remote.calls.load(), 1);

  remote.healthy.store(false);
  auto skipped = fed.ExecuteSql(sql);
  ASSERT_TRUE(skipped.ok()) << skipped.status();
  EXPECT_EQ(remote.calls.load(), 1);  // untouched
  EXPECT_EQ(fed.health_skip_failovers(), 1u);
  EXPECT_EQ(fed.failovers(), 1u);
  auto counters = fed.breakers()->Get("east")->counters();
  EXPECT_EQ(counters.failures, 0u);
  EXPECT_EQ(counters.state, BreakerState::kClosed);

  // Health returns: traffic resumes immediately — nothing was tripped.
  remote.healthy.store(true);
  ASSERT_TRUE(fed.ExecuteSql(sql).ok());
  EXPECT_EQ(remote.calls.load(), 2);
}

TEST(FederatedExecutorTest, FailoverDisabledSurfacesTheRemoteError) {
  FederationFixture f;
  auto options = f.Options({"Supplier"});
  options.failover_to_local = false;
  FederatedExecutor fed(std::move(options));
  f.remote.fail_with.store(StatusCode::kUnavailable);
  auto result = fed.ExecuteSql("select suppkey from Supplier");
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(fed.failovers(), 0u);
}

// ---------------------------------------------------------------------------
// Service integration: the PublishingService running over a federated
// executor produces byte-identical XML whether the remote is healthy,
// failing over, or fast-failing on an open breaker.

std::string SerialReference(const Database* db) {
  Publisher publisher(db);
  PublishOptions options;
  options.strategy = PlanStrategy::kFullyPartitioned;
  std::ostringstream out;
  auto result = publisher.Publish(core::Query1Rxl(), options, &out);
  EXPECT_TRUE(result.ok()) << result.status();
  return out.str();
}

TEST(FederatedServiceTest, ByteIdenticalXmlAcrossFailoverStates) {
  FederationFixture f;
  std::string reference = SerialReference(f.db.get());
  FederatedExecutor fed(f.Options({"Supplier", "PartSupp"}));

  ServiceOptions service_options;
  service_options.workers = 4;
  service_options.executor = &fed;
  service_options.retry.max_attempts = 1;
  PublishingService service(f.db.get(), service_options);

  ServiceRequest request;
  request.rxl = core::Query1Rxl();
  request.options.strategy = PlanStrategy::kFullyPartitioned;

  // Healthy: remote serves its tables.
  ServiceResponse healthy = service.Publish(request);
  ASSERT_TRUE(healthy.status.ok()) << healthy.status;
  EXPECT_EQ(healthy.xml, reference);
  EXPECT_GT(fed.remote_queries(), 0u);

  // Remote down: every component falls back to local, same bytes.
  f.remote.fail_with.store(StatusCode::kUnavailable);
  ServiceResponse degraded = service.Publish(request);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status;
  EXPECT_EQ(degraded.xml, reference);
  EXPECT_GT(fed.failovers(), 0u);

  // Breaker now open: fast-fail failover, still the same bytes.
  ASSERT_EQ(fed.breakers()->Get("east")->state(), BreakerState::kOpen);
  int remote_calls = f.remote.calls.load();
  ServiceResponse fast_failed = service.Publish(request);
  ASSERT_TRUE(fast_failed.status.ok()) << fast_failed.status;
  EXPECT_EQ(fast_failed.xml, reference);
  EXPECT_EQ(f.remote.calls.load(), remote_calls);  // remote untouched

  // Recovery: remote heals, breaker re-closes, remote serves again.
  f.remote.fail_with.store(StatusCode::kOk);
  f.now += 150;
  uint64_t remote_before = fed.remote_queries();
  ServiceResponse recovered = service.Publish(request);
  ASSERT_TRUE(recovered.status.ok()) << recovered.status;
  EXPECT_EQ(recovered.xml, reference);
  EXPECT_GT(fed.remote_queries(), remote_before);
  EXPECT_EQ(fed.breakers()->Get("east")->state(), BreakerState::kClosed);
}

}  // namespace
}  // namespace silkroute::service
