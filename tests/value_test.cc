#include <gtest/gtest.h>

#include "common/random.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace silkroute {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_FALSE(v.is_int64());
  EXPECT_FALSE(v.is_double());
  EXPECT_FALSE(v.is_string());
}

TEST(ValueTest, TypedConstructionAndAccess) {
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
}

TEST(ValueTest, AsNumericWidensInt) {
  EXPECT_DOUBLE_EQ(Value::Int64(3).AsNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Double(3.5).AsNumeric(), 3.5);
}

TEST(ValueTest, NullsCompareEqualAndFirst) {
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_LT(Value::Null().Compare(Value::Int64(0)), 0);
  EXPECT_LT(Value::Null().Compare(Value::String("")), 0);
  EXPECT_GT(Value::Int64(-100).Compare(Value::Null()), 0);
}

TEST(ValueTest, NumericCompareCrossType) {
  EXPECT_EQ(Value::Int64(3).Compare(Value::Double(3.0)), 0);
  EXPECT_LT(Value::Int64(3).Compare(Value::Double(3.5)), 0);
  EXPECT_GT(Value::Double(4.0).Compare(Value::Int64(3)), 0);
}

TEST(ValueTest, StringsCompareLexicographically) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
  EXPECT_GT(Value::String("b").Compare(Value::String("a")), 0);
}

TEST(ValueTest, NumericsSortBeforeStrings) {
  EXPECT_LT(Value::Int64(999999).Compare(Value::String("0")), 0);
}

TEST(ValueTest, SqlEqualsRejectsNulls) {
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Null()));
  EXPECT_FALSE(Value::Null().SqlEquals(Value::Int64(1)));
  EXPECT_TRUE(Value::Int64(1).SqlEquals(Value::Int64(1)));
  EXPECT_TRUE(Value::Int64(1).SqlEquals(Value::Double(1.0)));
}

TEST(ValueTest, HashConsistentWithCompare) {
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
  EXPECT_EQ(Value::String("abc").Hash(), Value::String("abc").Hash());
  Random rng(7);
  for (int i = 0; i < 200; ++i) {
    int64_t x = rng.Uniform(-1000, 1000);
    Value a = Value::Int64(x);
    Value b = Value::Double(static_cast<double>(x));
    ASSERT_EQ(a.Compare(b), 0);
    ASSERT_EQ(a.Hash(), b.Hash());
  }
}

TEST(ValueTest, ByteSize) {
  EXPECT_EQ(Value::Null().ByteSize(), 1u);
  EXPECT_EQ(Value::Int64(1).ByteSize(), 8u);
  EXPECT_EQ(Value::Double(1.0).ByteSize(), 8u);
  EXPECT_EQ(Value::String("abcd").ByteSize(), 8u);  // 4 payload + 4 length
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-5).ToString(), "-5");
  EXPECT_EQ(Value::String("it's").ToString(), "'it''s'");
  EXPECT_EQ(Value::Double(2.0).ToString(), "2.0");
}

TEST(ValueTest, ToXmlText) {
  EXPECT_EQ(Value::Null().ToXmlText(), "");
  EXPECT_EQ(Value::Int64(7).ToXmlText(), "7");
  EXPECT_EQ(Value::String("a<b").ToXmlText(), "a<b");  // escaping is the writer's job
}

TEST(ValueTest, CompareIsTotalOrderProperty) {
  // Antisymmetry and transitivity over a random sample.
  Random rng(13);
  std::vector<Value> values;
  for (int i = 0; i < 30; ++i) {
    switch (rng.Uniform(0, 3)) {
      case 0:
        values.push_back(Value::Null());
        break;
      case 1:
        values.push_back(Value::Int64(rng.Uniform(-5, 5)));
        break;
      case 2:
        values.push_back(Value::Double(static_cast<double>(rng.Uniform(-5, 5)) / 2));
        break;
      default:
        values.push_back(Value::String(rng.NextString(2)));
    }
  }
  for (const auto& a : values) {
    for (const auto& b : values) {
      EXPECT_EQ(a.Compare(b), -b.Compare(a));
      for (const auto& c : values) {
        if (a.Compare(b) <= 0 && b.Compare(c) <= 0) {
          EXPECT_LE(a.Compare(c), 0);
        }
      }
    }
  }
}

TEST(TupleTest, ConcatJoinsValues) {
  Tuple a{Value::Int64(1), Value::String("x")};
  Tuple b{Value::Null()};
  Tuple c = Tuple::Concat(a, b);
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].AsInt64(), 1);
  EXPECT_EQ(c[1].AsString(), "x");
  EXPECT_TRUE(c[2].is_null());
}

TEST(TupleTest, CompareLexicographic) {
  Tuple a{Value::Int64(1), Value::Int64(2)};
  Tuple b{Value::Int64(1), Value::Int64(3)};
  EXPECT_LT(a.Compare(b), 0);
  EXPECT_EQ(a.Compare(a), 0);
  Tuple shorter{Value::Int64(1)};
  EXPECT_LT(shorter.Compare(a), 0);  // prefix sorts first
}

TEST(TupleTest, ByteSizeSumsValues) {
  Tuple t{Value::Int64(1), Value::String("abcd"), Value::Null()};
  EXPECT_EQ(t.ByteSize(), 8u + 8u + 1u);
}

TEST(TupleTest, ToStringRendering) {
  Tuple t{Value::Int64(1), Value::String("a")};
  EXPECT_EQ(t.ToString(), "(1, 'a')");
}

}  // namespace
}  // namespace silkroute
