// Property tests for the order-preserving key codec (engine/key_codec.h):
// the whole point of the packed-key hot path is that memcmp over encodings
// is a drop-in replacement for Value::Compare / SqlEquals, so these tests
// sweep a corpus covering every type pair (NULL / int64 / double / string,
// negative doubles, both zeros, infinities, empty strings, embedded NULs)
// and assert sign agreement pairwise rather than spot-checking examples.
#include "engine/key_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "relational/tuple.h"
#include "relational/value.h"

namespace silkroute::engine {
namespace {

int Sign(int x) { return (x > 0) - (x < 0); }

std::string Enc(const Value& v) {
  std::string out;
  EncodeValue(v, &out);
  return out;
}

std::string EncDesc(const Value& v) {
  std::string out;
  EncodeValueDescending(v, &out);
  return out;
}

/// memcmp semantics over full encodings. Segments are prefix-free, so for
/// value (and equal-arity row) encodings the first byte difference always
/// falls within the shorter string; the length tiebreak only fires on
/// byte-equal encodings.
int ByteCompare(const std::string& a, const std::string& b) {
  return Sign(a.compare(b));
}

/// Every value type and the ordering edge cases. All int64s stay within
/// ±2^53 where the double image is exact; the beyond-2^53 tie is covered
/// by its own test below.
std::vector<Value> Corpus() {
  constexpr int64_t kExact = int64_t{1} << 53;
  const double inf = std::numeric_limits<double>::infinity();
  return {
      Value::Null(),
      Value::Int64(-kExact),
      Value::Int64(-1000000),
      Value::Int64(-1),
      Value::Int64(0),
      Value::Int64(1),
      Value::Int64(3),
      Value::Int64(42),
      Value::Int64(kExact),
      Value::Double(-inf),
      Value::Double(-1e300),
      Value::Double(-2.5),
      Value::Double(-0.5),
      Value::Double(-0.0),
      Value::Double(0.0),
      Value::Double(0.5),
      Value::Double(2.5),
      Value::Double(3.0),  // ties Int64(3) cross-type
      Value::Double(1e300),
      Value::Double(inf),
      Value::String(""),
      Value::String(std::string("\0", 1)),
      Value::String(std::string("\0\0", 2)),
      Value::String(std::string("\0x", 2)),
      Value::String("a"),
      Value::String(std::string("a\0b", 3)),
      Value::String("ab"),
      Value::String("a\xff"),
      Value::String("b"),
      Value::String("\xff"),
  };
}

TEST(KeyCodecTest, MemcmpAgreesWithValueCompareForAllPairs) {
  const std::vector<Value> vals = Corpus();
  for (size_t i = 0; i < vals.size(); ++i) {
    const std::string ea = Enc(vals[i]);
    for (size_t j = 0; j < vals.size(); ++j) {
      const std::string eb = Enc(vals[j]);
      EXPECT_EQ(ByteCompare(ea, eb), Sign(vals[i].Compare(vals[j])))
          << "corpus[" << i << "] vs corpus[" << j << "]";
    }
  }
}

TEST(KeyCodecTest, DescendingEncodingReversesOrder) {
  const std::vector<Value> vals = Corpus();
  for (size_t i = 0; i < vals.size(); ++i) {
    const std::string ea = EncDesc(vals[i]);
    for (size_t j = 0; j < vals.size(); ++j) {
      const std::string eb = EncDesc(vals[j]);
      EXPECT_EQ(ByteCompare(ea, eb), -Sign(vals[i].Compare(vals[j])))
          << "corpus[" << i << "] vs corpus[" << j << "]";
    }
  }
}

TEST(KeyCodecTest, CrossTypeNumericTieEncodesIdentically) {
  EXPECT_EQ(Enc(Value::Int64(3)), Enc(Value::Double(3.0)));
  EXPECT_EQ(Enc(Value::Int64(0)), Enc(Value::Double(-0.0)));
  EXPECT_EQ(Enc(Value::Double(0.0)), Enc(Value::Double(-0.0)));
}

// The documented caveat: int64s beyond ±2^53 go through their double
// image, so distinct giant ints sharing an image degrade to a stable tie —
// never to a wrong type/NULL ordering.
TEST(KeyCodecTest, GiantInt64sDegradeToStableTie) {
  const Value a = Value::Int64(std::numeric_limits<int64_t>::max());
  const Value b = Value::Int64(std::numeric_limits<int64_t>::max() - 1);
  ASSERT_NE(a.Compare(b), 0);  // exact int compare resolves them...
  EXPECT_EQ(Enc(a), Enc(b));   // ...the encoding ties them
  // Still strictly above every in-range numeric and below every string.
  EXPECT_GT(ByteCompare(Enc(a), Enc(Value::Int64(int64_t{1} << 53))), 0);
  EXPECT_LT(ByteCompare(Enc(a), Enc(Value::String(""))), 0);
}

TEST(KeyCodecTest, JoinKeyEqualityMatchesSqlEquals) {
  const std::vector<Value> vals = Corpus();
  const std::vector<size_t> cols = {0};
  for (size_t i = 0; i < vals.size(); ++i) {
    Tuple ra{vals[i]};
    std::string ea;
    const bool oka = EncodeJoinKey(ra, cols, &ea);
    // NULL key columns must refuse to encode: equality joins never match
    // NULLs.
    EXPECT_EQ(oka, !vals[i].is_null());
    if (!oka) continue;
    for (size_t j = 0; j < vals.size(); ++j) {
      Tuple rb{vals[j]};
      std::string eb;
      if (!EncodeJoinKey(rb, cols, &eb)) continue;
      EXPECT_EQ(ea == eb, vals[i].SqlEquals(vals[j]))
          << "corpus[" << i << "] vs corpus[" << j << "]";
    }
  }
}

TEST(KeyCodecTest, RowKeyEqualityIsDistinctIdentity) {
  // Whole-row keys allow NULLs and treat NULL == NULL (DISTINCT identity).
  Tuple a{Value::Null(), Value::Int64(3), Value::String("x")};
  Tuple b{Value::Null(), Value::Double(3.0), Value::String("x")};
  Tuple c{Value::Null(), Value::Int64(3), Value::String("y")};
  std::string ea, eb, ec;
  EncodeRowKey(a, &ea);
  EncodeRowKey(b, &eb);
  EncodeRowKey(c, &ec);
  EXPECT_EQ(ea, eb);
  EXPECT_NE(ea, ec);
}

TEST(KeyCodecTest, CompositeKeysOrderLikeTupleCompare) {
  // Composite keys: memcmp order over concatenated segments must equal
  // column-by-column Value::Compare (first non-equal column decides) —
  // including when an early string segment is a prefix of the other.
  std::vector<Tuple> rows;
  const std::vector<Value> small = {
      Value::Null(),          Value::Int64(-1), Value::Double(0.5),
      Value::String(""),      Value::String("a"), Value::String("ab"),
  };
  for (const Value& x : small)
    for (const Value& y : small) rows.push_back(Tuple{x, y});

  auto tuple_cmp = [](const Tuple& a, const Tuple& b) {
    for (size_t c = 0; c < a.values().size(); ++c) {
      int cmp = a.values()[c].Compare(b.values()[c]);
      if (cmp != 0) return Sign(cmp);
    }
    return 0;
  };
  for (const Tuple& a : rows) {
    std::string ea;
    EncodeRowKey(a, &ea);
    for (const Tuple& b : rows) {
      std::string eb;
      EncodeRowKey(b, &eb);
      EXPECT_EQ(ByteCompare(ea, eb), tuple_cmp(a, b));
    }
  }
}

TEST(KeyCodecTest, OrderedNumericBitsMatchesCompare) {
  const std::vector<Value> vals = Corpus();
  for (const Value& a : vals) {
    if (a.is_null() || (!a.is_int64() && !a.is_double())) continue;
    const uint64_t ba = OrderedNumericBits(a);
    for (const Value& b : vals) {
      if (b.is_null() || (!b.is_int64() && !b.is_double())) continue;
      const uint64_t bb = OrderedNumericBits(b);
      const int want = Sign(a.Compare(b));
      EXPECT_EQ((ba < bb) ? -1 : (ba > bb ? 1 : 0), want);
      // Complemented bits reverse the order (DESC sort keys).
      EXPECT_EQ((~ba < ~bb) ? -1 : (~ba > ~bb ? 1 : 0), -want);
    }
  }
}

TEST(KeyCodecTest, ArenaKeepsViewsStableAcrossChunkGrowth) {
  KeyArena arena(/*chunk_bytes=*/16);
  std::vector<std::pair<std::string, std::string_view>> interned;
  uint64_t total_bytes = 0;
  for (int i = 0; i < 200; ++i) {
    // Sizes from 0 to beyond the chunk size (forces dedicated chunks).
    std::string key(static_cast<size_t>(i % 37), static_cast<char>('a' + i % 7));
    key += std::to_string(i);
    std::string_view view = arena.Intern(key);
    EXPECT_EQ(view, key);
    total_bytes += key.size();
    interned.emplace_back(std::move(key), view);
  }
  // No chunk was reallocated in place: every earlier view still reads back.
  for (const auto& [key, view] : interned) EXPECT_EQ(view, key);
  EXPECT_EQ(arena.keys_interned(), 200u);
  EXPECT_EQ(arena.bytes_interned(), total_bytes);
}

}  // namespace
}  // namespace silkroute::engine
