// Property tests for the order-preserving key codec (engine/key_codec.h):
// the whole point of the packed-key hot path is that memcmp over encodings
// is a drop-in replacement for Value::Compare / SqlEquals, so these tests
// sweep a corpus covering every type pair (NULL / int64 / double / string,
// negative doubles, both zeros, infinities, empty strings, embedded NULs)
// and assert sign agreement pairwise rather than spot-checking examples.
#include "engine/key_codec.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "relational/table.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace silkroute::engine {
namespace {

int Sign(int x) { return (x > 0) - (x < 0); }

std::string Enc(const Value& v) {
  std::string out;
  EncodeValue(v, &out);
  return out;
}

std::string EncDesc(const Value& v) {
  std::string out;
  EncodeValueDescending(v, &out);
  return out;
}

/// memcmp semantics over full encodings. Segments are prefix-free, so for
/// value (and equal-arity row) encodings the first byte difference always
/// falls within the shorter string; the length tiebreak only fires on
/// byte-equal encodings.
int ByteCompare(const std::string& a, const std::string& b) {
  return Sign(a.compare(b));
}

/// Every value type and the ordering edge cases. All int64s stay within
/// ±2^53 where the double image is exact; the beyond-2^53 tie is covered
/// by its own test below.
std::vector<Value> Corpus() {
  constexpr int64_t kExact = int64_t{1} << 53;
  const double inf = std::numeric_limits<double>::infinity();
  return {
      Value::Null(),
      Value::Int64(-kExact),
      Value::Int64(-1000000),
      Value::Int64(-1),
      Value::Int64(0),
      Value::Int64(1),
      Value::Int64(3),
      Value::Int64(42),
      Value::Int64(kExact),
      Value::Double(-inf),
      Value::Double(-1e300),
      Value::Double(-2.5),
      Value::Double(-0.5),
      Value::Double(-0.0),
      Value::Double(0.0),
      Value::Double(0.5),
      Value::Double(2.5),
      Value::Double(3.0),  // ties Int64(3) cross-type
      Value::Double(1e300),
      Value::Double(inf),
      Value::String(""),
      Value::String(std::string("\0", 1)),
      Value::String(std::string("\0\0", 2)),
      Value::String(std::string("\0x", 2)),
      Value::String("a"),
      Value::String(std::string("a\0b", 3)),
      Value::String("ab"),
      Value::String("a\xff"),
      Value::String("b"),
      Value::String("\xff"),
  };
}

TEST(KeyCodecTest, MemcmpAgreesWithValueCompareForAllPairs) {
  const std::vector<Value> vals = Corpus();
  for (size_t i = 0; i < vals.size(); ++i) {
    const std::string ea = Enc(vals[i]);
    for (size_t j = 0; j < vals.size(); ++j) {
      const std::string eb = Enc(vals[j]);
      EXPECT_EQ(ByteCompare(ea, eb), Sign(vals[i].Compare(vals[j])))
          << "corpus[" << i << "] vs corpus[" << j << "]";
    }
  }
}

TEST(KeyCodecTest, DescendingEncodingReversesOrder) {
  const std::vector<Value> vals = Corpus();
  for (size_t i = 0; i < vals.size(); ++i) {
    const std::string ea = EncDesc(vals[i]);
    for (size_t j = 0; j < vals.size(); ++j) {
      const std::string eb = EncDesc(vals[j]);
      EXPECT_EQ(ByteCompare(ea, eb), -Sign(vals[i].Compare(vals[j])))
          << "corpus[" << i << "] vs corpus[" << j << "]";
    }
  }
}

TEST(KeyCodecTest, CrossTypeNumericTieEncodesIdentically) {
  EXPECT_EQ(Enc(Value::Int64(3)), Enc(Value::Double(3.0)));
  EXPECT_EQ(Enc(Value::Int64(0)), Enc(Value::Double(-0.0)));
  EXPECT_EQ(Enc(Value::Double(0.0)), Enc(Value::Double(-0.0)));
}

// Int64s beyond ±2^53 share a double image with their neighbours; the
// segment's integer tiebreaker must keep memcmp order exact anyway —
// this used to degrade to a stable tie (equal encodings for distinct
// giants), which broke ORDER BY / DISTINCT / join keys on giant ids.
TEST(KeyCodecTest, GiantInt64sKeepExactOrder) {
  constexpr int64_t kExact = int64_t{1} << 53;
  const int64_t kMax = std::numeric_limits<int64_t>::max();
  const int64_t kMin = std::numeric_limits<int64_t>::min();
  // Every regression magnitude: the 2^53 boundary on both sides, its
  // immediate neighbours, and the extremes where the image saturates.
  const std::vector<int64_t> giants = {
      kMin,        kMin + 1,    -kMax,       -kExact - 2, -kExact - 1,
      -kExact,     -kExact + 1, kExact - 1,  kExact,      kExact + 1,
      kExact + 2,  kMax - 1,    kMax,
  };
  for (size_t i = 0; i < giants.size(); ++i) {
    const Value a = Value::Int64(giants[i]);
    for (size_t j = 0; j < giants.size(); ++j) {
      const Value b = Value::Int64(giants[j]);
      EXPECT_EQ(ByteCompare(Enc(a), Enc(b)), Sign(a.Compare(b)))
          << giants[i] << " vs " << giants[j];
      EXPECT_EQ(ByteCompare(EncDesc(a), EncDesc(b)), -Sign(a.Compare(b)))
          << "DESC " << giants[i] << " vs " << giants[j];
    }
    // Type ordering is intact: small numerics sort by sign, strings above.
    const Value small = Value::Int64(kExact - 2);
    EXPECT_EQ(ByteCompare(Enc(a), Enc(small)), Sign(a.Compare(small)))
        << giants[i];
    EXPECT_LT(ByteCompare(Enc(a), Enc(Value::String(""))), 0) << giants[i];
  }
}

// Tie presence is a pure function of the image, so composite keys with a
// giant segment stay self-delimiting: the next column still decides when
// the giant segments are byte-equal.
TEST(KeyCodecTest, GiantSegmentsStaySelfDelimitingInCompositeKeys) {
  const int64_t giant = (int64_t{1} << 53) + 1;
  Tuple a{Value::Int64(giant), Value::String("a")};
  Tuple b{Value::Int64(giant), Value::String("b")};
  Tuple c{Value::Int64(giant + 1), Value::String("a")};
  std::string ea, eb, ec;
  EncodeRowKey(a, &ea);
  EncodeRowKey(b, &eb);
  EncodeRowKey(c, &ec);
  EXPECT_LT(ByteCompare(ea, eb), 0);  // equal giants: second column decides
  EXPECT_LT(ByteCompare(ea, ec), 0);  // tiebreaker decides before column 2
}

// A giant int64 and the double that is exactly its value still encode
// byte-equal (both carry the same tiebreaker); the double one image above
// sorts strictly after.
TEST(KeyCodecTest, GiantCrossTypeExactTiesEncodeIdentically) {
  constexpr int64_t kExact = int64_t{1} << 53;
  EXPECT_EQ(Enc(Value::Int64(kExact)),
            Enc(Value::Double(static_cast<double>(kExact))));
  EXPECT_GT(ByteCompare(Enc(Value::Double(9007199254742016.0)),
                        Enc(Value::Int64(kExact))),
            0);
  // NumericFitsWord flags exactly the tiebreaker-carrying magnitudes, so
  // the word-packed sort fast path excludes them.
  EXPECT_TRUE(NumericFitsWord(Value::Int64(kExact - 1)));
  EXPECT_FALSE(NumericFitsWord(Value::Int64(kExact)));
  EXPECT_FALSE(NumericFitsWord(Value::Int64(-kExact)));
  EXPECT_TRUE(NumericFitsWord(Value::Double(1e15)));
  EXPECT_FALSE(NumericFitsWord(Value::Double(1e300)));
}

TEST(KeyCodecTest, JoinKeyEqualityMatchesSqlEquals) {
  const std::vector<Value> vals = Corpus();
  const std::vector<size_t> cols = {0};
  for (size_t i = 0; i < vals.size(); ++i) {
    Tuple ra{vals[i]};
    std::string ea;
    const bool oka = EncodeJoinKey(ra, cols, &ea);
    // NULL key columns must refuse to encode: equality joins never match
    // NULLs.
    EXPECT_EQ(oka, !vals[i].is_null());
    if (!oka) continue;
    for (size_t j = 0; j < vals.size(); ++j) {
      Tuple rb{vals[j]};
      std::string eb;
      if (!EncodeJoinKey(rb, cols, &eb)) continue;
      EXPECT_EQ(ea == eb, vals[i].SqlEquals(vals[j]))
          << "corpus[" << i << "] vs corpus[" << j << "]";
    }
  }
}

TEST(KeyCodecTest, RowKeyEqualityIsDistinctIdentity) {
  // Whole-row keys allow NULLs and treat NULL == NULL (DISTINCT identity).
  Tuple a{Value::Null(), Value::Int64(3), Value::String("x")};
  Tuple b{Value::Null(), Value::Double(3.0), Value::String("x")};
  Tuple c{Value::Null(), Value::Int64(3), Value::String("y")};
  std::string ea, eb, ec;
  EncodeRowKey(a, &ea);
  EncodeRowKey(b, &eb);
  EncodeRowKey(c, &ec);
  EXPECT_EQ(ea, eb);
  EXPECT_NE(ea, ec);
}

TEST(KeyCodecTest, CompositeKeysOrderLikeTupleCompare) {
  // Composite keys: memcmp order over concatenated segments must equal
  // column-by-column Value::Compare (first non-equal column decides) —
  // including when an early string segment is a prefix of the other.
  std::vector<Tuple> rows;
  const std::vector<Value> small = {
      Value::Null(),          Value::Int64(-1), Value::Double(0.5),
      Value::String(""),      Value::String("a"), Value::String("ab"),
  };
  for (const Value& x : small)
    for (const Value& y : small) rows.push_back(Tuple{x, y});

  auto tuple_cmp = [](const Tuple& a, const Tuple& b) {
    for (size_t c = 0; c < a.values().size(); ++c) {
      int cmp = a.values()[c].Compare(b.values()[c]);
      if (cmp != 0) return Sign(cmp);
    }
    return 0;
  };
  for (const Tuple& a : rows) {
    std::string ea;
    EncodeRowKey(a, &ea);
    for (const Tuple& b : rows) {
      std::string eb;
      EncodeRowKey(b, &eb);
      EXPECT_EQ(ByteCompare(ea, eb), tuple_cmp(a, b));
    }
  }
}

TEST(KeyCodecTest, OrderedNumericBitsMatchesCompare) {
  const std::vector<Value> vals = Corpus();
  for (const Value& a : vals) {
    if (a.is_null() || (!a.is_int64() && !a.is_double())) continue;
    const uint64_t ba = OrderedNumericBits(a);
    for (const Value& b : vals) {
      if (b.is_null() || (!b.is_int64() && !b.is_double())) continue;
      const uint64_t bb = OrderedNumericBits(b);
      const int want = Sign(a.Compare(b));
      EXPECT_EQ((ba < bb) ? -1 : (ba > bb ? 1 : 0), want);
      // Complemented bits reverse the order (DESC sort keys).
      EXPECT_EQ((~ba < ~bb) ? -1 : (~ba > ~bb ? 1 : 0), -want);
    }
  }
}

// --- Column-array encoding (the shard fast path) --------------------------
// EncodeShardValue reads cells straight out of ColumnVector storage instead
// of materializing a Value; the executor mixes both paths freely inside one
// hash join (row-store probe vs columnar build), so the two encoders must be
// byte-identical over the full type corpus — including int64 cells smuggled
// into kDouble columns and the ±2^53 tiebreaker regime.

/// A 3-column table whose rows sweep every corpus value through the column
/// type that can hold it (ints also pass through the kDouble column, where
/// the exact subtype must survive encoding).
std::unique_ptr<Table> MakeCorpusTable(size_t shard_count) {
  constexpr int64_t kExact = int64_t{1} << 53;
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<Value> ints = {
      Value::Null(),          Value::Int64(std::numeric_limits<int64_t>::min()),
      Value::Int64(-kExact - 1), Value::Int64(-kExact), Value::Int64(-1),
      Value::Int64(0),        Value::Int64(3),          Value::Int64(kExact),
      Value::Int64(kExact + 1),
      Value::Int64(std::numeric_limits<int64_t>::max())};
  const std::vector<Value> nums = {
      Value::Null(),         Value::Double(-inf),  Value::Double(-1e300),
      Value::Double(-0.5),   Value::Double(-0.0),  Value::Double(0.0),
      Value::Double(3.0),    Value::Double(9007199254740994.0),
      Value::Double(inf),    Value::Int64(3),      Value::Int64(kExact + 1),
      Value::Int64(-kExact - 2)};
  const std::vector<Value> strs = {
      Value::Null(),       Value::String(""), Value::String(std::string("\0", 1)),
      Value::String("a"),  Value::String(std::string("a\0b", 3)),
      Value::String("a\xff"), Value::String("\xff")};
  TableSchema schema("corpus", {{"i", DataType::kInt64, /*nullable=*/true},
                                {"d", DataType::kDouble, true},
                                {"s", DataType::kString, true}});
  auto table = std::make_unique<Table>(std::move(schema), shard_count);
  const size_t n = ints.size() * nums.size() * strs.size() / 7;
  for (size_t r = 0; r < n; ++r) {
    EXPECT_TRUE(table
                    ->Insert(Tuple{ints[r % ints.size()],
                                   nums[(r * 5) % nums.size()],
                                   strs[(r * 3) % strs.size()]})
                    .ok());
  }
  EXPECT_TRUE(table->columnar_exact());
  return table;
}

TEST(KeyCodecTest, ShardEncodingIsByteIdenticalToValueEncoding) {
  for (size_t shard_count : {1u, 4u, 16u}) {
    auto table = MakeCorpusTable(shard_count);
    for (size_t g = 0; g < table->num_rows(); ++g) {
      const Table::RowLoc loc = table->row_loc(g);
      const ColumnarShard& shard = table->shard(loc.shard);
      for (size_t c = 0; c < 3; ++c) {
        const Value& v = table->rows()[g].values()[c];
        std::string from_value, from_column;
        EncodeValue(v, &from_value);
        EncodeShardValue(shard, c, loc.pos, &from_column);
        EXPECT_EQ(from_column, from_value)
            << "shards=" << shard_count << " row " << g << " col " << c
            << " value " << v;
        std::string desc_value, desc_column;
        EncodeValueDescending(v, &desc_value);
        EncodeShardValueDescending(shard, c, loc.pos, &desc_column);
        EXPECT_EQ(desc_column, desc_value)
            << "DESC shards=" << shard_count << " row " << g << " col " << c;
      }
    }
  }
}

TEST(KeyCodecTest, TableJoinKeyMatchesTupleJoinKeyIncludingNullRefusal) {
  const std::vector<std::vector<size_t>> col_sets = {{0}, {1}, {2}, {0, 1, 2},
                                                     {2, 0}};
  for (size_t shard_count : {1u, 4u, 16u}) {
    auto table = MakeCorpusTable(shard_count);
    for (size_t g = 0; g < table->num_rows(); ++g) {
      for (const auto& cols : col_sets) {
        std::string from_tuple, from_table;
        const bool ok_tuple = EncodeJoinKey(table->rows()[g], cols,
                                            &from_tuple);
        const bool ok_table = EncodeTableJoinKey(*table, g, cols, &from_table);
        ASSERT_EQ(ok_table, ok_tuple) << "shards=" << shard_count << " row "
                                      << g;
        if (ok_tuple) {
          EXPECT_EQ(from_table, from_tuple)
              << "shards=" << shard_count << " row " << g;
        }
      }
    }
  }
}

TEST(KeyCodecTest, ArenaKeepsViewsStableAcrossChunkGrowth) {
  KeyArena arena(/*chunk_bytes=*/16);
  std::vector<std::pair<std::string, std::string_view>> interned;
  uint64_t total_bytes = 0;
  for (int i = 0; i < 200; ++i) {
    // Sizes from 0 to beyond the chunk size (forces dedicated chunks).
    std::string key(static_cast<size_t>(i % 37), static_cast<char>('a' + i % 7));
    key += std::to_string(i);
    std::string_view view = arena.Intern(key);
    EXPECT_EQ(view, key);
    total_bytes += key.size();
    interned.emplace_back(std::move(key), view);
  }
  // No chunk was reallocated in place: every earlier view still reads back.
  for (const auto& [key, view] : interned) EXPECT_EQ(view, key);
  EXPECT_EQ(arena.keys_interned(), 200u);
  EXPECT_EQ(arena.bytes_interned(), total_bytes);
}

}  // namespace
}  // namespace silkroute::engine
