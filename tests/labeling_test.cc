#include "silkroute/labeling.h"

#include <gtest/gtest.h>

#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;
using testutil::MustBuildTree;
using testutil::NodeByName;

class LabelingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { db_ = MakeTinyTpch().release(); }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  Multiplicity LabelOf(const ViewTree& tree, const std::string& name) {
    int id = NodeByName(tree, name);
    EXPECT_GE(id, 0) << name;
    return tree.node(id).edge_label;
  }

  static Database* db_;
};

Database* LabelingTest::db_ = nullptr;

TEST_F(LabelingTest, Query1LabelsMatchFig6) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  // Fig. 6: S1.1, S1.2, S1.3 are '1'; S1.4 is '*'; S1.4.1 is '1';
  // S1.4.2 is '*'; S1.4.2.{1,2,3} are '1'.
  EXPECT_EQ(LabelOf(tree, "S1.1"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.2"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.3"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.4"), Multiplicity::kStar);
  EXPECT_EQ(LabelOf(tree, "S1.4.1"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.4.2"), Multiplicity::kStar);
  EXPECT_EQ(LabelOf(tree, "S1.4.2.1"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.4.2.2"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.4.2.3"), Multiplicity::kOne);
}

TEST_F(LabelingTest, Query2LabelsMatchFig12) {
  ViewTree tree = MustBuildTree(Query2Rxl(), db_->catalog());
  // Fig. 12: two parallel '*' edges (part and order); everything else '1'.
  EXPECT_EQ(LabelOf(tree, "S1.4"), Multiplicity::kStar);
  EXPECT_EQ(LabelOf(tree, "S1.5"), Multiplicity::kStar);
  EXPECT_EQ(LabelOf(tree, "S1.1"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.4.1"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.5.1"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.5.2"), Multiplicity::kOne);
  EXPECT_EQ(LabelOf(tree, "S1.5.3"), Multiplicity::kOne);
}

TEST_F(LabelingTest, LiteralFilterMakesChildOptional) {
  // A constant filter on the joined nation breaks C2 (some suppliers' rows
  // are filtered out) but C1 still holds -> '?'.
  ViewTree tree = MustBuildTree(R"(
    from Supplier $s construct
    <supplier>
      { from Nation $n
        where $s.nationkey = $n.nationkey, $n.name = 'FRANCE'
        construct <nation>$n.name</nation> }
    </supplier>
  )",
                                db_->catalog());
  EXPECT_EQ(LabelOf(tree, "S1.1"), Multiplicity::kOptional);
}

TEST_F(LabelingTest, NonFkJoinIsStarOrPlus) {
  // Joining supplier to customer on nationkey: no FK, not single-valued.
  ViewTree tree = MustBuildTree(R"(
    from Supplier $s construct
    <supplier>
      { from Customer $c
        where $s.nationkey = $c.nationkey
        construct <customer>$c.name</customer> }
    </supplier>
  )",
                                db_->catalog());
  EXPECT_EQ(LabelOf(tree, "S1.1"), Multiplicity::kStar);
}

TEST_F(LabelingTest, SameScopeValueChildIsOne) {
  ViewTree tree = MustBuildTree(
      "from Supplier $s construct <supplier><name>$s.name</name></supplier>",
      db_->catalog());
  EXPECT_EQ(LabelOf(tree, "S1.1"), Multiplicity::kOne);
}

TEST_F(LabelingTest, FkChainThroughTwoTablesIsOne) {
  // supplier -> nation -> region via two FK hops in one block.
  ViewTree tree = MustBuildTree(R"(
    from Supplier $s construct
    <supplier>
      { from Nation $n, Region $r
        where $s.nationkey = $n.nationkey, $n.regionkey = $r.regionkey
        construct <region>$r.name</region> }
    </supplier>
  )",
                                db_->catalog());
  EXPECT_EQ(LabelOf(tree, "S1.1"), Multiplicity::kOne);
}

TEST_F(LabelingTest, FdClosureExpandsThroughKeys) {
  // With Supplier's key in hand, all supplier columns are determined, and
  // the join equality propagates nationkey into Nation's key, determining
  // Nation's columns too.
  std::vector<DatalogAtom> atoms = {{"Supplier", "s"}, {"Nation", "n"}};
  auto cond = rxl::ParseRxl(
      "from Supplier $s, Nation $n where $s.nationkey = $n.nationkey "
      "construct <e/>");
  ASSERT_TRUE(cond.ok());
  std::vector<rxl::FieldRef> start = {{"s", "suppkey"}};
  auto closure =
      FdClosure(db_->catalog(), atoms, cond->root.where, start);
  auto contains = [&](const std::string& var, const std::string& field) {
    return std::find(closure.begin(), closure.end(),
                     rxl::FieldRef{var, field}) != closure.end();
  };
  EXPECT_TRUE(contains("s", "name"));
  EXPECT_TRUE(contains("s", "nationkey"));
  EXPECT_TRUE(contains("n", "nationkey"));
  EXPECT_TRUE(contains("n", "name"));
  EXPECT_TRUE(contains("n", "regionkey"));
}

TEST_F(LabelingTest, FdClosureDoesNotInventDependencies) {
  // Starting from a non-key column, nothing else follows.
  std::vector<DatalogAtom> atoms = {{"Supplier", "s"}};
  std::vector<rxl::FieldRef> start = {{"s", "name"}};
  auto closure = FdClosure(db_->catalog(), atoms, {}, start);
  EXPECT_EQ(closure.size(), 1u);
}

TEST_F(LabelingTest, FdClosureUsesConstantFilters) {
  // A literal filter pins nationkey, which with the key FD determines all
  // Nation columns.
  auto cond = rxl::ParseRxl(
      "from Nation $n where $n.nationkey = 3 construct <e/>");
  ASSERT_TRUE(cond.ok());
  std::vector<DatalogAtom> atoms = {{"Nation", "n"}};
  auto closure = FdClosure(db_->catalog(), atoms, cond->root.where, {});
  EXPECT_EQ(closure.size(), 3u);  // nationkey, name, regionkey
}

TEST_F(LabelingTest, CompositeFkCoverageRequired) {
  // LineItem -> PartSupp requires both partkey and suppkey; joining on only
  // one of them must not produce an at-least-one label.
  ViewTree tree = MustBuildTree(R"(
    from LineItem $l construct
    <item>
      { from PartSupp $ps
        where $l.partkey = $ps.partkey
        construct <ps>$ps.availqty</ps> }
    </item>
  )",
                                db_->catalog());
  Multiplicity m = LabelOf(tree, "S1.1");
  EXPECT_TRUE(m == Multiplicity::kStar || m == Multiplicity::kPlus);
  EXPECT_FALSE(AtMostOne(m));
}

TEST_F(LabelingTest, MultiplicityPredicates) {
  EXPECT_TRUE(AtLeastOne(Multiplicity::kOne));
  EXPECT_TRUE(AtLeastOne(Multiplicity::kPlus));
  EXPECT_FALSE(AtLeastOne(Multiplicity::kStar));
  EXPECT_FALSE(AtLeastOne(Multiplicity::kOptional));
  EXPECT_TRUE(AtMostOne(Multiplicity::kOne));
  EXPECT_TRUE(AtMostOne(Multiplicity::kOptional));
  EXPECT_FALSE(AtMostOne(Multiplicity::kPlus));
  EXPECT_STREQ(MultiplicityToString(Multiplicity::kStar), "*");
  EXPECT_STREQ(MultiplicityToString(Multiplicity::kOne), "1");
}

}  // namespace
}  // namespace silkroute::core
