#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace silkroute::sql {
namespace {

TEST(SqlLexerTest, EmptyInputYieldsEnd) {
  auto tokens = Tokenize("");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 1u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kEnd);
}

TEST(SqlLexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("SELECT Select select");
  ASSERT_TRUE(tokens.ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kKeyword);
    EXPECT_EQ((*tokens)[i].text, "select");
  }
}

TEST(SqlLexerTest, IdentifiersKeepCase) {
  auto tokens = Tokenize("Supplier suppKey");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "Supplier");
  EXPECT_EQ((*tokens)[1].text, "suppKey");
}

TEST(SqlLexerTest, Numbers) {
  auto tokens = Tokenize("42 3.14");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_EQ((*tokens)[1].text, "3.14");
}

TEST(SqlLexerTest, QualifiedNameSplitsOnDot) {
  auto tokens = Tokenize("s.suppkey");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "s");
  EXPECT_TRUE((*tokens)[1].IsSymbol("."));
  EXPECT_EQ((*tokens)[2].text, "suppkey");
}

TEST(SqlLexerTest, StringLiteralWithEscapedQuote) {
  auto tokens = Tokenize("'it''s'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's");
}

TEST(SqlLexerTest, UnterminatedStringIsError) {
  EXPECT_EQ(Tokenize("'oops").status().code(), StatusCode::kParseError);
}

TEST(SqlLexerTest, TwoCharSymbols) {
  auto tokens = Tokenize("<> <= >= !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_TRUE((*tokens)[0].IsSymbol("<>"));
  EXPECT_TRUE((*tokens)[1].IsSymbol("<="));
  EXPECT_TRUE((*tokens)[2].IsSymbol(">="));
  EXPECT_TRUE((*tokens)[3].IsSymbol("<>"));  // != normalized
}

TEST(SqlLexerTest, SingleCharSymbols) {
  auto tokens = Tokenize("( ) , . + - * / = < >");
  ASSERT_TRUE(tokens.ok());
  const char* expected[] = {"(", ")", ",", ".", "+", "-",
                            "*", "/", "=", "<", ">"};
  for (size_t i = 0; i < 11; ++i) {
    EXPECT_TRUE((*tokens)[i].IsSymbol(expected[i])) << i;
  }
}

TEST(SqlLexerTest, UnexpectedCharacterIsError) {
  EXPECT_EQ(Tokenize("select @").status().code(), StatusCode::kParseError);
}

TEST(SqlLexerTest, OffsetsTracked) {
  auto tokens = Tokenize("select x");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].offset, 0u);
  EXPECT_EQ((*tokens)[1].offset, 7u);
}

TEST(SqlLexerTest, LineCommentsSkipped) {
  auto tokens = Tokenize("select -- a comment: with symbols!\n x");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // select, x, end
  EXPECT_EQ((*tokens)[1].text, "x");
  // Subtraction still lexes.
  auto minus = Tokenize("a - b");
  ASSERT_TRUE(minus.ok());
  EXPECT_TRUE((*minus)[1].IsSymbol("-"));
}

TEST(SqlLexerTest, KeywordPredicate) {
  EXPECT_TRUE(IsSqlKeyword("select"));
  EXPECT_TRUE(IsSqlKeyword("union"));
  EXPECT_FALSE(IsSqlKeyword("supplier"));
}

}  // namespace
}  // namespace silkroute::sql
