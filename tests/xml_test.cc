#include <gtest/gtest.h>

#include <sstream>

#include "common/random.h"
#include "xml/escape.h"
#include "xml/reader.h"
#include "xml/writer.h"

namespace silkroute::xml {
namespace {

TEST(EscapeTest, TextEscapesMarkup) {
  EXPECT_EQ(EscapeText("a<b>&c"), "a&lt;b&gt;&amp;c");
  EXPECT_EQ(EscapeText("plain"), "plain");
  EXPECT_EQ(EscapeText("\"quotes'"), "\"quotes'");  // unescaped in text
}

TEST(EscapeTest, AttributeEscapesQuotes) {
  EXPECT_EQ(EscapeAttribute("a\"b'c"), "a&quot;b&apos;c");
}

TEST(EscapeTest, UnescapeStandardEntities) {
  EXPECT_EQ(Unescape("&lt;&gt;&amp;&quot;&apos;"), "<>&\"'");
}

TEST(EscapeTest, UnescapeCharacterReferences) {
  EXPECT_EQ(Unescape("&#65;&#x42;"), "AB");
}

TEST(EscapeTest, UnescapeLeavesUnknownEntities) {
  EXPECT_EQ(Unescape("&unknown;"), "&unknown;");
  EXPECT_EQ(Unescape("a & b"), "a & b");  // bare ampersand preserved
}

TEST(EscapeTest, RoundTripProperty) {
  Random rng(3);
  for (int i = 0; i < 200; ++i) {
    std::string s;
    for (int j = 0; j < 20; ++j) {
      const char alphabet[] = "ab<>&\"' ";
      s.push_back(alphabet[rng.Uniform(0, 7)]);
    }
    EXPECT_EQ(Unescape(EscapeText(s)), s);
    EXPECT_EQ(Unescape(EscapeAttribute(s)), s);
  }
}

TEST(XmlWriterTest, SimpleDocument) {
  std::ostringstream out;
  XmlWriter w(&out);
  ASSERT_TRUE(w.StartElement("root").ok());
  ASSERT_TRUE(w.Text("hi").ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(out.str(),
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?><root>hi</root>");
}

TEST(XmlWriterTest, SelfClosingEmptyElement) {
  std::ostringstream out;
  XmlWriter::Options opts;
  opts.declaration = false;
  XmlWriter w(&out, opts);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.StartElement("b").ok());
  ASSERT_TRUE(w.EndElement().ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(out.str(), "<a><b/></a>");
}

TEST(XmlWriterTest, AttributesOnlyBeforeContent) {
  std::ostringstream out;
  XmlWriter::Options opts;
  opts.declaration = false;
  XmlWriter w(&out, opts);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.Attribute("k", "v\"w").ok());
  ASSERT_TRUE(w.Text("t").ok());
  EXPECT_FALSE(w.Attribute("late", "x").ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(out.str(), "<a k=\"v&quot;w\">t</a>");
}

TEST(XmlWriterTest, TextEscaped) {
  std::ostringstream out;
  XmlWriter::Options opts;
  opts.declaration = false;
  XmlWriter w(&out, opts);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.Text("<&>").ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(out.str(), "<a>&lt;&amp;&gt;</a>");
}

TEST(XmlWriterTest, ErrorsOnMisuse) {
  std::ostringstream out;
  XmlWriter w(&out);
  EXPECT_FALSE(w.Text("orphan").ok());
  EXPECT_FALSE(w.EndElement().ok());
  EXPECT_FALSE(w.StartElement("").ok());
}

TEST(XmlWriterTest, FinishClosesAllOpenElements) {
  std::ostringstream out;
  XmlWriter::Options opts;
  opts.declaration = false;
  XmlWriter w(&out, opts);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.StartElement("b").ok());
  ASSERT_TRUE(w.StartElement("c").ok());
  EXPECT_EQ(w.depth(), 3u);
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(w.depth(), 0u);
  EXPECT_EQ(out.str(), "<a><b><c/></b></a>");
}

TEST(XmlWriterTest, PrettyPrintingIndents) {
  std::ostringstream out;
  XmlWriter::Options opts;
  opts.declaration = false;
  opts.pretty = true;
  XmlWriter w(&out, opts);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.StartElement("b").ok());
  ASSERT_TRUE(w.Text("x").ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(out.str(), "<a>\n  <b>x</b>\n</a>\n");
}

TEST(XmlWriterTest, BytesWrittenTracked) {
  std::ostringstream out;
  XmlWriter::Options opts;
  opts.declaration = false;
  XmlWriter w(&out, opts);
  ASSERT_TRUE(w.StartElement("a").ok());
  ASSERT_TRUE(w.Finish().ok());
  EXPECT_EQ(w.bytes_written(), out.str().size());
}

TEST(XmlReaderTest, ParsesNestedElements) {
  auto doc = ParseXml("<a><b>x</b><b>y</b><c/></a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->name, "a");
  EXPECT_EQ((*doc)->NumChildren(), 3u);
  EXPECT_EQ((*doc)->Children("b").size(), 2u);
  EXPECT_EQ((*doc)->FirstChild("b")->text, "x");
  EXPECT_EQ((*doc)->FirstChild("missing"), nullptr);
}

TEST(XmlReaderTest, ParsesAttributes) {
  auto doc = ParseXml("<a k=\"v\" x='y&amp;z'/>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->attributes.at("k"), "v");
  EXPECT_EQ((*doc)->attributes.at("x"), "y&z");
}

TEST(XmlReaderTest, SkipsDeclarationDoctypeAndComments) {
  auto doc = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a><!-- hi --><a><!-- in -->x</a>");
  ASSERT_TRUE(doc.ok()) << doc.status();
  EXPECT_EQ((*doc)->text, "x");
}

TEST(XmlReaderTest, UnescapesText) {
  auto doc = ParseXml("<a>&lt;tag&gt; &amp; more</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->text, "<tag> & more");
}

TEST(XmlReaderTest, ErrorsOnMalformedInput) {
  EXPECT_FALSE(ParseXml("<a><b></a></b>").ok());   // mismatched close
  EXPECT_FALSE(ParseXml("<a>").ok());              // unterminated
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());         // two roots
  EXPECT_FALSE(ParseXml("<a k=v/>").ok());         // unquoted attribute
  EXPECT_FALSE(ParseXml("plain text").ok());       // no element
}

TEST(XmlReaderTest, WriterReaderRoundTrip) {
  std::ostringstream out;
  XmlWriter w(&out);
  ASSERT_TRUE(w.StartElement("root").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w.StartElement("item").ok());
    ASSERT_TRUE(w.Attribute("id", std::to_string(i)).ok());
    ASSERT_TRUE(w.Text("v<" + std::to_string(i) + ">&").ok());
    ASSERT_TRUE(w.EndElement().ok());
  }
  ASSERT_TRUE(w.Finish().ok());
  auto doc = ParseXml(out.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto items = (*doc)->Children("item");
  ASSERT_EQ(items.size(), 5u);
  EXPECT_EQ(items[3]->attributes.at("id"), "3");
  EXPECT_EQ(items[3]->text, "v<3>&");
}

/// Emits the same small document through `w`.
void EmitSampleDocument(XmlWriter* w) {
  ASSERT_TRUE(w->StartElement("root").ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(w->StartElement("item").ok());
    ASSERT_TRUE(w->Attribute("id", std::to_string(i)).ok());
    ASSERT_TRUE(w->Text("value <" + std::to_string(i) + "> & \"more\"").ok());
    ASSERT_TRUE(w->EndElement().ok());
  }
  ASSERT_TRUE(w->Finish().ok());
}

TEST(XmlWriterTest, BufferingNeverChangesEmittedBytes) {
  std::string unbuffered_bytes;
  {
    std::ostringstream out;
    XmlWriter::Options opts;
    opts.buffer_bytes = 0;  // write-through
    XmlWriter w(&out, opts);
    EmitSampleDocument(&w);
    EXPECT_EQ(w.flushes(), 0u);  // write-through never pushes chunks
    unbuffered_bytes = out.str();
  }
  for (size_t buffer : {size_t{1}, size_t{64}, size_t{1 << 20}}) {
    std::ostringstream out;
    XmlWriter::Options opts;
    opts.buffer_bytes = buffer;
    XmlWriter w(&out, opts);
    EmitSampleDocument(&w);
    EXPECT_EQ(out.str(), unbuffered_bytes) << "buffer_bytes=" << buffer;
    EXPECT_EQ(w.bytes_written(), unbuffered_bytes.size());
  }
}

TEST(XmlWriterTest, SmallBufferFlushesInChunks) {
  std::ostringstream out;
  XmlWriter::Options opts;
  opts.buffer_bytes = 64;
  XmlWriter w(&out, opts);
  EmitSampleDocument(&w);
  // The document is ~2 KiB: a 64-byte buffer must have pushed many chunks,
  // a single one would mean buffering is off by a factor of the document.
  EXPECT_GT(w.flushes(), 10u);
  EXPECT_LE(w.flushes(), w.bytes_written() / 64 + 1);
}

TEST(XmlWriterTest, LargeBufferFlushesOnce) {
  std::ostringstream out;
  XmlWriter w(&out);  // default 64 KiB buffer, document is much smaller
  EmitSampleDocument(&w);
  EXPECT_EQ(w.flushes(), 1u);  // only the final Finish-driven flush
}

TEST(XmlWriterTest, DestructorFlushesAbandonedDocument) {
  std::ostringstream out;
  {
    XmlWriter::Options opts;
    opts.declaration = false;
    XmlWriter w(&out, opts);  // buffered
    ASSERT_TRUE(w.StartElement("partial").ok());
    ASSERT_TRUE(w.Text("abandoned mid-document").ok());
    // No Finish: the error path drops the writer.
  }
  EXPECT_EQ(out.str(), "<partial>abandoned mid-document");
}

TEST(XmlReaderTest, DeepNestingRoundTrip) {
  std::ostringstream out;
  XmlWriter::Options opts;
  opts.declaration = false;
  XmlWriter w(&out, opts);
  const int kDepth = 200;
  for (int i = 0; i < kDepth; ++i) {
    ASSERT_TRUE(w.StartElement("d").ok());
  }
  ASSERT_TRUE(w.Finish().ok());
  auto doc = ParseXml(out.str());
  ASSERT_TRUE(doc.ok());
  const XmlNode* node = doc->get();
  int depth = 1;
  while (node->NumChildren() > 0) {
    node = node->children[0].get();
    ++depth;
  }
  EXPECT_EQ(depth, kDepth);
}

}  // namespace
}  // namespace silkroute::xml
