#include "silkroute/view_tree.h"

#include <gtest/gtest.h>

#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;
using testutil::MustBuildTree;
using testutil::NodeByName;

class ViewTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { db_ = MakeTinyTpch().release(); }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* ViewTreeTest::db_ = nullptr;

TEST_F(ViewTreeTest, Query1MatchesFig6Structure) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  // Fig. 6: 10 nodes, 9 edges, depth 4.
  EXPECT_EQ(tree.num_nodes(), 10u);
  EXPECT_EQ(tree.num_edges(), 9u);
  EXPECT_EQ(tree.MaxLevel(), 4);

  // Skolem names assigned breadth-first.
  EXPECT_EQ(tree.node(0).skolem_name, "S1");
  EXPECT_EQ(tree.node(0).tag, "supplier");
  ASSERT_GE(NodeByName(tree, "S1.4.2.3"), 0);
  const ViewTreeNode& nation2 = tree.node(NodeByName(tree, "S1.4.2.3"));
  EXPECT_EQ(nation2.tag, "nation");
  EXPECT_EQ(nation2.sfi, (std::vector<int>{1, 4, 2, 3}));

  // Children of the root, in template order: name, nation, region, part.
  const ViewTreeNode& root = tree.node(0);
  ASSERT_EQ(root.children.size(), 4u);
  EXPECT_EQ(tree.node(root.children[0]).tag, "name");
  EXPECT_EQ(tree.node(root.children[1]).tag, "nation");
  EXPECT_EQ(tree.node(root.children[2]).tag, "region");
  EXPECT_EQ(tree.node(root.children[3]).tag, "part");
}

TEST_F(ViewTreeTest, Query2MatchesFig12Structure) {
  ViewTree tree = MustBuildTree(Query2Rxl(), db_->catalog());
  EXPECT_EQ(tree.num_nodes(), 10u);
  EXPECT_EQ(tree.num_edges(), 9u);
  const ViewTreeNode& root = tree.node(0);
  ASSERT_EQ(root.children.size(), 5u);  // name, nation, region, part, order
  EXPECT_EQ(tree.node(root.children[3]).tag, "part");
  EXPECT_EQ(tree.node(root.children[4]).tag, "order");
  // Fig. 12: order's subtree is at level 2 with three children.
  const ViewTreeNode& order = tree.node(root.children[4]);
  EXPECT_EQ(order.skolem_name, "S1.5");
  EXPECT_EQ(order.children.size(), 3u);
}

TEST_F(ViewTreeTest, RootSkolemTermIsSupplierKey) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  const ViewTreeNode& root = tree.node(0);
  ASSERT_EQ(root.args.size(), 1u);
  EXPECT_EQ(root.args[0].field.ToString(), "$s.suppkey");
  EXPECT_EQ(root.args[0].index, (VarIndex{1, 1}));
  EXPECT_TRUE(root.args[0].identity);
}

TEST_F(ViewTreeTest, VariableIndicesFollowPaperScheme) {
  // The shallowest containing node determines p; q is unique per level
  // (paper: suppkey gets (1,1), the supplier's name value gets (2,1)).
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  const ViewTreeNode& name_node = tree.node(NodeByName(tree, "S1.1"));
  ASSERT_EQ(name_node.args.size(), 2u);
  EXPECT_EQ(name_node.args[0].index, (VarIndex{1, 1}));  // inherited suppkey
  EXPECT_FALSE(name_node.args[0].own);
  EXPECT_EQ(name_node.args[1].index, (VarIndex{2, 1}));  // name value
  EXPECT_TRUE(name_node.args[1].own);
  EXPECT_FALSE(name_node.args[1].identity);  // value, not scope key
  EXPECT_EQ(name_node.args[1].index.ColumnName(), "v2_1");
}

TEST_F(ViewTreeTest, NodeQueriesAccumulateScope) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  const ViewTreeNode& order = tree.node(NodeByName(tree, "S1.4.2"));
  // Scope: Supplier, PartSupp, Part, LineItem, Orders.
  EXPECT_EQ(order.atoms.size(), 5u);
  EXPECT_EQ(order.conditions.size(), 5u);
  const ViewTreeNode& root = tree.node(0);
  EXPECT_EQ(root.atoms.size(), 1u);
  EXPECT_TRUE(root.conditions.empty());
}

TEST_F(ViewTreeTest, ContentItemsPreserveDocumentOrder) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  const ViewTreeNode& part = tree.node(NodeByName(tree, "S1.4"));
  ASSERT_EQ(part.content.size(), 2u);
  EXPECT_EQ(part.content[0].kind, ViewTreeNode::ContentItem::Kind::kChild);
  EXPECT_EQ(tree.node(part.content[0].child_id).tag, "name");
  EXPECT_EQ(tree.node(part.content[1].child_id).tag, "order");
}

TEST_F(ViewTreeTest, VarIndexRoundTrip) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  auto index = tree.IndexOf({"s", "suppkey"});
  ASSERT_TRUE(index.ok());
  auto field = tree.FieldOf(*index);
  ASSERT_TRUE(field.ok());
  EXPECT_EQ(field->ToString(), "$s.suppkey");
  EXPECT_FALSE(tree.IndexOf({"zz", "zz"}).ok());
  EXPECT_FALSE(tree.FieldOf(VarIndex{9, 9}).ok());
}

TEST_F(ViewTreeTest, IdentityVarsAtLevelSorted) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  auto level1 = tree.IdentityVarsAtLevel(1);
  ASSERT_EQ(level1.size(), 1u);
  EXPECT_EQ(level1[0], (VarIndex{1, 1}));
  auto level2 = tree.IdentityVarsAtLevel(2);
  EXPECT_GE(level2.size(), 3u);  // nationkey(s), partkeys
  for (size_t i = 1; i < level2.size(); ++i) {
    EXPECT_LT(level2[i - 1].q, level2[i].q);
  }
  // Values (e.g. the supplier's name) are not identity variables.
  auto name_index = tree.IndexOf({"s", "name"});
  ASSERT_TRUE(name_index.ok());
  EXPECT_FALSE(tree.IsIdentityVar(*name_index));
}

TEST_F(ViewTreeTest, ExplicitSkolemOverridesIdentity) {
  ViewTree tree = MustBuildTree(R"(
    from Supplier $s construct
    <supplier ID=SK($s.nationkey)>
      <name>$s.name</name>
    </supplier>
  )",
                                db_->catalog());
  const ViewTreeNode& root = tree.node(0);
  ASSERT_EQ(root.args.size(), 1u);
  EXPECT_EQ(root.args[0].field.ToString(), "$s.nationkey");
  EXPECT_EQ(root.skolem_name, "SK");
}

TEST_F(ViewTreeTest, ErrorOnUnknownTable) {
  auto parsed = rxl::ParseRxl("from Nope $n construct <e>$n.x</e>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ViewTree::Build(*parsed, db_->catalog()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ViewTreeTest, ErrorOnUnknownColumn) {
  auto parsed =
      rxl::ParseRxl("from Supplier $s construct <e>$s.nope</e>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ViewTree::Build(*parsed, db_->catalog()).status().code(),
            StatusCode::kNotFound);
}

TEST_F(ViewTreeTest, ErrorOnUnboundVariable) {
  auto parsed = rxl::ParseRxl("from Supplier $s construct <e>$t.x</e>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(ViewTree::Build(*parsed, db_->catalog()).ok());
}

TEST_F(ViewTreeTest, ErrorOnShadowedVariable) {
  auto parsed = rxl::ParseRxl(R"(
    from Supplier $s construct
    <a>{ from Nation $s construct <b>$s.name</b> }</a>
  )");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ViewTree::Build(*parsed, db_->catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ViewTreeTest, ErrorOnMultipleRootElements) {
  auto parsed = rxl::ParseRxl("from Supplier $s construct <a/> <b/>");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ViewTree::Build(*parsed, db_->catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ViewTreeTest, FusionRejectsMismatchedTags) {
  auto parsed = rxl::ParseRxl(R"(
    from Supplier $s construct
    <a><b ID=F($s.suppkey)/><c ID=F($s.suppkey)/></a>
  )");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ViewTree::Build(*parsed, db_->catalog()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ViewTreeTest, FusionAcrossParentsUnsupported) {
  auto parsed = rxl::ParseRxl(R"(
    from Supplier $s construct
    <a><x><b ID=F($s.suppkey)/></x><y><b ID=F($s.suppkey)/></y></a>
  )");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ViewTree::Build(*parsed, db_->catalog()).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(ViewTreeTest, SiblingFusionMergesIntoOneNode) {
  // Suppliers and customers fused into one <contact> set per nation.
  ViewTree tree = MustBuildTree(R"(
    from Nation $n construct
    <nation ID=N($n.nationkey)>
      { from Supplier $s where $s.nationkey = $n.nationkey
        construct <contact ID=C($n.nationkey, $s.name)>$s.name</contact> }
      { from Customer $c where $c.nationkey = $n.nationkey
        construct <contact ID=C($n.nationkey, $c.name)>$c.name</contact> }
    </nation>
  )",
                                db_->catalog());
  ASSERT_EQ(tree.num_nodes(), 2u);  // nation + one fused contact node
  const ViewTreeNode& contact = tree.node(1);
  EXPECT_TRUE(contact.fused());
  EXPECT_EQ(contact.AllRules().size(), 2u);
  // Both rules share the identity columns and carry their own value.
  const auto rules = contact.AllRules();
  EXPECT_EQ(rules[0].atoms.size(), 2u);  // Nation, Supplier
  EXPECT_EQ(rules[1].atoms.size(), 2u);  // Nation, Customer
  EXPECT_FALSE(AtMostOne(contact.edge_label));
}

TEST_F(ViewTreeTest, ExplicitSkolemMustIncludeParentIdentity) {
  auto parsed = rxl::ParseRxl(R"(
    from Supplier $s construct
    <supplier>
      { from Nation $n where $s.nationkey = $n.nationkey
        construct <nation ID=N($n.nationkey)>$n.name</nation> }
    </supplier>
  )");
  ASSERT_TRUE(parsed.ok());
  // N(nationkey) omits the parent's suppkey: the stream merge could not
  // align such instances.
  auto tree = ViewTree::Build(*parsed, db_->catalog());
  EXPECT_EQ(tree.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ViewTreeTest, EdgesEnumeratedInBfsOrder) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  auto edges = tree.Edges();
  ASSERT_EQ(edges.size(), 9u);
  for (const auto& [parent, child] : edges) {
    EXPECT_LT(parent, child);
    EXPECT_EQ(tree.node(child).parent, parent);
  }
}

TEST_F(ViewTreeTest, ToStringMentionsEveryNode) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  std::string rendered = tree.ToString();
  for (const auto& n : tree.nodes()) {
    EXPECT_NE(rendered.find(n.skolem_name), std::string::npos);
  }
}

}  // namespace
}  // namespace silkroute::core
