// End-to-end tests of Skolem-function fusion (paper Sec. 3.1): elements
// constructed by different queries but sharing a Skolem function merge into
// one element — the data-integration feature. Fused instances must merge
// identically under every plan and both SQL-generation styles.
#include <gtest/gtest.h>

#include <sstream>

#include "silkroute/publisher.h"
#include "tests/test_util.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

// One <contact> list per nation, drawing names from BOTH suppliers and
// customers; a <profile> per nation fused from two sources, each
// contributing one value.
constexpr const char* kDirectoryView = R"(
from Nation $n
construct
<nation ID=N($n.nationkey)>
  <name>$n.name</name>
  { from Supplier $s where $s.nationkey = $n.nationkey
    construct <contact ID=C($n.nationkey, $s.name)>$s.name</contact> }
  { from Customer $c where $c.nationkey = $n.nationkey
    construct <contact ID=C($n.nationkey, $c.name)>$c.name</contact> }
</nation>
)";

constexpr const char* kFusedValuesView = R"(
from Region $r
construct
<region ID=R($r.regionkey)>
  { from Nation $n where $n.regionkey = $r.regionkey, $n.nationkey = 0
    construct <info ID=I($r.regionkey)>$n.name</info> }
  { from Nation $m where $m.regionkey = $r.regionkey, $m.nationkey = 15
    construct <info ID=I($r.regionkey)>$m.name</info> }
</region>
)";

class FusionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTinyTpch(0.002).release();
    publisher_ = new Publisher(db_);
  }
  static void TearDownTestSuite() {
    delete publisher_;
    delete db_;
    publisher_ = nullptr;
    db_ = nullptr;
  }

  std::string Publish(const char* rxl, const PublishOptions& options) {
    std::ostringstream out;
    auto result = publisher_->Publish(rxl, options, &out);
    EXPECT_TRUE(result.ok()) << result.status();
    return out.str();
  }

  static Database* db_;
  static Publisher* publisher_;
};

Database* FusionTest::db_ = nullptr;
Publisher* FusionTest::publisher_ = nullptr;

TEST_F(FusionTest, ContactsDrawFromBothSources) {
  PublishOptions options;
  options.document_element = "doc";
  std::string xml = Publish(kDirectoryView, options);
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << xml.substr(0, 500);

  size_t suppliers = 0, customers = 0;
  for (const auto* nation : (*doc)->Children("nation")) {
    for (const auto* contact : nation->Children("contact")) {
      if (contact->text.find("Supplier#") == 0) ++suppliers;
      if (contact->text.find("Customer#") == 0) ++customers;
    }
  }
  auto supplier_table = db_->GetTable("Supplier");
  auto customer_table = db_->GetTable("Customer");
  EXPECT_EQ(suppliers, (*supplier_table)->num_rows());
  EXPECT_EQ(customers, (*customer_table)->num_rows());
}

TEST_F(FusionTest, ContactsSortedByIdentityAcrossSources) {
  // The fused set is ordered by the Skolem identity (nationkey, name), so
  // suppliers and customers interleave by name rather than by source.
  PublishOptions options;
  options.document_element = "doc";
  std::string xml = Publish(kDirectoryView, options);
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  for (const auto* nation : (*doc)->Children("nation")) {
    std::string prev;
    for (const auto* contact : nation->Children("contact")) {
      EXPECT_LE(prev, contact->text);
      prev = contact->text;
    }
  }
}

TEST_F(FusionTest, AllPlansAndStylesAgree) {
  auto tree = publisher_->BuildViewTree(kDirectoryView);
  ASSERT_TRUE(tree.ok()) << tree.status();
  ASSERT_EQ(tree->num_edges(), 2u);  // name + fused contact
  std::string reference;
  for (uint64_t mask = 0; mask < 4; ++mask) {
    for (auto style : {SqlGenStyle::kOuterJoin, SqlGenStyle::kOuterUnion}) {
      for (bool reduce : {false, true}) {
        PublishOptions options;
        options.style = style;
        options.reduce = reduce;
        options.document_element = "doc";
        std::ostringstream out;
        auto metrics = publisher_->ExecutePlan(*tree, mask, options, &out);
        ASSERT_TRUE(metrics.ok()) << metrics.status();
        EXPECT_EQ(metrics->tagger.forced_ancestor_opens, 0u);
        if (reference.empty()) {
          reference = out.str();
        } else {
          EXPECT_EQ(out.str(), reference)
              << "mask=" << mask << " style=" << SqlGenStyleToString(style)
              << " reduce=" << reduce;
        }
      }
    }
  }
}

TEST_F(FusionTest, EqualKeysMergeIntoOneElementWithBothValues) {
  // Both rules produce an <info> for the same region key: the element must
  // appear once, carrying the values of both occurrences.
  PublishOptions options;
  options.document_element = "doc";
  std::string xml = Publish(kFusedValuesView, options);
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << xml;
  // Nation 0 (ALGERIA) and 15 (MOROCCO) are both in region 0 (AFRICA).
  bool found = false;
  for (const auto* region : (*doc)->Children("region")) {
    auto infos = region->Children("info");
    if (infos.empty()) continue;
    ASSERT_EQ(infos.size(), 1u) << xml;  // fused, not duplicated
    if (infos[0]->text.find("ALGERIA") != std::string::npos) {
      EXPECT_NE(infos[0]->text.find("MOROCCO"), std::string::npos) << xml;
      found = true;
    }
  }
  EXPECT_TRUE(found) << xml;
}

TEST_F(FusionTest, OccurrenceTextAccompaniesItsRule) {
  // Literal text inside a fused occurrence is emitted only when that
  // occurrence contributed a value: ALGERIA (nation 0) and MOROCCO (15)
  // are both in region 0; other regions' <info> elements draw from one
  // rule only and must not show the other rule's separator text.
  const char* view = R"(
    from Region $r
    construct
    <region ID=R($r.regionkey)>
      <name ID=RN($r.regionkey)>$r.name</name>
      { from Nation $n where $n.regionkey = $r.regionkey, $n.nationkey < 5
        construct <info ID=I($r.regionkey)>"low:"$n.name</info> }
      { from Nation $m where $m.regionkey = $r.regionkey, $m.nationkey > 20
        construct <info ID=I($r.regionkey)>"high:"$m.name</info> }
    </region>
  )";
  PublishOptions options;
  options.document_element = "doc";
  std::string xml = Publish(view, options);
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << xml;
  bool saw_low_only = false, saw_both = false;
  for (const auto* region : (*doc)->Children("region")) {
    for (const auto* info : region->Children("info")) {
      bool low = info->text.find("low:") != std::string::npos;
      bool high = info->text.find("high:") != std::string::npos;
      if (low && !high) saw_low_only = true;
      if (low && high) saw_both = true;
      // The separator never appears without its rule's value.
      if (low) {
        EXPECT_NE(info->text.find("low:"), std::string::npos);
      }
    }
  }
  EXPECT_TRUE(saw_low_only) << xml;  // a region with only low-key nations
  EXPECT_TRUE(saw_both) << xml;      // a region fused from both rules
}

TEST_F(FusionTest, FusedSqlIsUnionOfRules) {
  auto tree = publisher_->BuildViewTree(kDirectoryView);
  ASSERT_TRUE(tree.ok());
  SqlGenerator gen(&*tree, SqlGenStyle::kOuterUnion, /*reduce=*/false);
  // The fused node alone: its SQL must union the supplier and customer
  // rules.
  int fused_id = -1;
  for (const auto& node : tree->nodes()) {
    if (node.fused()) fused_id = node.id;
  }
  ASSERT_GE(fused_id, 0);
  auto spec = gen.GenerateComponent({fused_id});
  ASSERT_TRUE(spec.ok()) << spec.status();
  EXPECT_NE(spec->sql.find("union all"), std::string::npos) << spec->sql;
  EXPECT_NE(spec->sql.find("Supplier"), std::string::npos);
  EXPECT_NE(spec->sql.find("Customer"), std::string::npos);
  ASSERT_EQ(spec->instances.size(), 1u);
  EXPECT_TRUE(spec->instances[0].fused);
}

TEST_F(FusionTest, SubtreeStreamsStayConsistent) {
  // Fused node in its own stream vs fused node joined with the parent.
  auto tree = publisher_->BuildViewTree(kDirectoryView);
  ASSERT_TRUE(tree.ok());
  PublishOptions options;
  options.document_element = "doc";
  std::ostringstream separate, joined;
  ASSERT_TRUE(publisher_->ExecutePlan(*tree, 0, options, &separate).ok());
  ASSERT_TRUE(publisher_->ExecutePlan(*tree, 3, options, &joined).ok());
  EXPECT_EQ(separate.str(), joined.str());
}

}  // namespace
}  // namespace silkroute::core
