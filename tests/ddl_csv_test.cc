#include <gtest/gtest.h>

#include <sstream>

#include "relational/csv.h"
#include "sql/ddl.h"

namespace silkroute {
namespace {

constexpr const char* kSchema = R"(
CREATE TABLE Nation (
  nationkey BIGINT PRIMARY KEY,
  name      VARCHAR(25)
);
CREATE TABLE Supplier (
  suppkey   BIGINT,
  name      VARCHAR(25) NOT NULL,
  balance   DECIMAL(12, 2),
  comment   TEXT NULL,
  nationkey BIGINT,
  PRIMARY KEY (suppkey),
  FOREIGN KEY (nationkey) REFERENCES Nation(nationkey)
);
)";

TEST(DdlTest, CreatesTablesWithTypes) {
  Database db;
  auto created = sql::ExecuteDdl(kSchema, &db);
  ASSERT_TRUE(created.ok()) << created.status();
  EXPECT_EQ(*created, 2u);

  auto supplier = db.catalog().GetTable("Supplier");
  ASSERT_TRUE(supplier.ok());
  EXPECT_EQ((*supplier)->num_columns(), 5u);
  EXPECT_EQ((*supplier)->column(0).type, DataType::kInt64);
  EXPECT_EQ((*supplier)->column(1).type, DataType::kString);
  EXPECT_EQ((*supplier)->column(2).type, DataType::kDouble);
  EXPECT_FALSE((*supplier)->column(1).nullable);
  EXPECT_TRUE((*supplier)->column(3).nullable);
}

TEST(DdlTest, KeysAndForeignKeys) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(kSchema, &db).ok());
  auto supplier = db.catalog().GetTable("Supplier");
  ASSERT_TRUE(supplier.ok());
  EXPECT_EQ((*supplier)->primary_key(),
            (std::vector<std::string>{"suppkey"}));
  EXPECT_TRUE(db.catalog().HasInclusionDependency("Supplier", {"nationkey"},
                                                  "Nation"));
}

TEST(DdlTest, InlinePrimaryKey) {
  Database db;
  auto created = sql::ExecuteDdl(
      "create table T (a int primary key, b text)", &db);
  ASSERT_TRUE(created.ok()) << created.status();
  auto t = db.catalog().GetTable("T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->primary_key(), (std::vector<std::string>{"a"}));
}

TEST(DdlTest, CompositeKeys) {
  Database db;
  auto created = sql::ExecuteDdl(
      "CREATE TABLE PS (p INT, s INT, q INT, PRIMARY KEY (p, s), "
      "FOREIGN KEY (p, s) REFERENCES Other(p, s))",
      &db);
  ASSERT_TRUE(created.ok()) << created.status();
  auto t = db.catalog().GetTable("PS");
  EXPECT_EQ((*t)->primary_key(), (std::vector<std::string>{"p", "s"}));
}

TEST(DdlTest, CaseInsensitiveKeywords) {
  Database db;
  EXPECT_TRUE(sql::ExecuteDdl(
                  "Create Table x (a Int Primary Key, b Varchar(10))", &db)
                  .ok());
}

TEST(DdlTest, Errors) {
  Database db;
  EXPECT_FALSE(sql::ExecuteDdl("CREATE TABLE", &db).ok());
  EXPECT_FALSE(sql::ExecuteDdl("CREATE TABLE T (a WEIRDTYPE)", &db).ok());
  EXPECT_FALSE(sql::ExecuteDdl("CREATE TABLE T (a int", &db).ok());
  EXPECT_FALSE(sql::ExecuteDdl(
                   "CREATE TABLE T (a int, PRIMARY KEY (zzz))", &db)
                   .ok());
  // Duplicate table.
  ASSERT_TRUE(sql::ExecuteDdl("CREATE TABLE D (a int)", &db).ok());
  EXPECT_FALSE(sql::ExecuteDdl("CREATE TABLE D (a int)", &db).ok());
}

TEST(CsvTest, ParsesPlainRecord) {
  EXPECT_EQ(ParseCsvRecord("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ParseCsvRecord(""), (std::vector<std::string>{""}));
  EXPECT_EQ(ParseCsvRecord("a,,c"),
            (std::vector<std::string>{"a", "", "c"}));
}

TEST(CsvTest, ParsesQuotedFields) {
  EXPECT_EQ(ParseCsvRecord("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
  EXPECT_EQ(ParseCsvRecord("\"he said \"\"hi\"\"\",x"),
            (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(CsvTest, StripsTrailingCarriageReturn) {
  EXPECT_EQ(ParseCsvRecord("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(CsvTest, LoadsTypedRows) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(kSchema, &db).ok());
  std::istringstream nations("nationkey,name\n0,FRANCE\n1,SPAIN\n");
  auto loaded = LoadCsv(&nations, CsvLoadOptions{}, "Nation", &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(*loaded, 2u);
  std::istringstream suppliers(
      "suppkey,name,balance,comment,nationkey\n"
      "1,\"Acme, Inc\",12.5,,0\n"
      "2,Widgets,-3.25,fast shipper,1\n");
  loaded = LoadCsv(&suppliers, CsvLoadOptions{}, "Supplier", &db);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  auto table = db.GetTable("Supplier");
  ASSERT_TRUE(table.ok());
  const auto& rows = (*table)->rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].AsString(), "Acme, Inc");
  EXPECT_TRUE(rows[0][3].is_null());  // empty nullable column
  EXPECT_DOUBLE_EQ(rows[1][2].AsDouble(), -3.25);
}

TEST(CsvTest, NoHeaderOption) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl("CREATE TABLE T (a int)", &db).ok());
  std::istringstream data("1\n2\n3\n");
  CsvLoadOptions options;
  options.has_header = false;
  auto loaded = LoadCsv(&data, options, "T", &db);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, 3u);
}

TEST(CsvTest, ReportsErrorsWithLineNumbers) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(kSchema, &db).ok());
  std::istringstream bad_arity("nationkey,name\n0\n");
  auto r = LoadCsv(&bad_arity, CsvLoadOptions{}, "Nation", &db);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);

  std::istringstream bad_type("nationkey,name\nxyz,FRANCE\n");
  auto r2 = LoadCsv(&bad_type, CsvLoadOptions{}, "Nation", &db);
  EXPECT_EQ(r2.status().code(), StatusCode::kTypeError);
}

TEST(CsvTest, EmptyFieldSemantics) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(kSchema, &db).ok());
  // Empty field in a non-nullable STRING column: loads as "".
  std::istringstream strings("nationkey,name\n0,\n");
  auto r = LoadCsv(&strings, CsvLoadOptions{}, "Nation", &db);
  ASSERT_TRUE(r.ok()) << r.status();
  auto nation = db.GetTable("Nation");
  EXPECT_EQ((*nation)->rows()[0][1].AsString(), "");
  // Empty field in a non-nullable INT column: type error.
  std::istringstream ints("nationkey,name\n,FRANCE\n");
  auto r2 = LoadCsv(&ints, CsvLoadOptions{}, "Nation", &db);
  EXPECT_EQ(r2.status().code(), StatusCode::kTypeError);
}

TEST(CsvTest, RejectsDuplicateKey) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl(kSchema, &db).ok());
  std::istringstream data("nationkey,name\n0,FRANCE\n0,SPAIN\n");
  auto r = LoadCsv(&data, CsvLoadOptions{}, "Nation", &db);
  EXPECT_EQ(r.status().code(), StatusCode::kConstraintViolation);
}

TEST(CsvTest, MissingFileIsNotFound) {
  Database db;
  ASSERT_TRUE(sql::ExecuteDdl("CREATE TABLE T (a int)", &db).ok());
  EXPECT_EQ(LoadCsvFile("/nonexistent/t.csv", CsvLoadOptions{}, "T", &db)
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace silkroute
