#include <gtest/gtest.h>

#include "common/random.h"
#include "engine/tuple_stream.h"

namespace silkroute::engine {
namespace {

Relation MakeRelation(std::vector<Tuple> rows) {
  Relation r;
  r.schema.Add({"", "a"});
  r.schema.Add({"", "b"});
  r.rows = std::move(rows);
  return r;
}

TEST(TupleStreamTest, RoundTripsAllValueKinds) {
  Tuple t{Value::Int64(-7), Value::Double(3.25), Value::String("héllo"),
          Value::Null()};
  std::string wire;
  SerializeTuple(t, &wire);
  size_t offset = 0;
  auto back = DeserializeTuple(wire, &offset);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(offset, wire.size());
  EXPECT_EQ(*back, t);
}

TEST(TupleStreamTest, EmptyTupleRoundTrips) {
  Tuple t;
  std::string wire;
  SerializeTuple(t, &wire);
  size_t offset = 0;
  auto back = DeserializeTuple(wire, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->size(), 0u);
}

TEST(TupleStreamTest, TruncatedBufferIsError) {
  Tuple t{Value::String("abcdef")};
  std::string wire;
  SerializeTuple(t, &wire);
  for (size_t cut = 1; cut < wire.size(); ++cut) {
    std::string truncated = wire.substr(0, cut);
    size_t offset = 0;
    EXPECT_FALSE(DeserializeTuple(truncated, &offset).ok()) << cut;
  }
}

TEST(TupleStreamTest, BadTagIsError) {
  std::string wire;
  SerializeTuple(Tuple{Value::Int64(1)}, &wire);
  wire[4] = 99;  // corrupt the field tag
  size_t offset = 0;
  EXPECT_EQ(DeserializeTuple(wire, &offset).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TupleStreamTest, HostileValueCountRejectedBeforeAllocation) {
  // A forged header claiming 4 billion values must fail fast (the real
  // buffer has almost no bytes), not attempt a giant reserve.
  std::string wire("\xFF\xFF\xFF\xFF", 4);
  wire.push_back('\0');  // one stray byte after the forged count
  size_t offset = 0;
  auto result = DeserializeTuple(wire, &offset);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TupleStreamTest, HostileStringLengthRejected) {
  // A string length near UINT32_MAX must not wrap the bounds check.
  std::string wire;
  SerializeTuple(Tuple{Value::String("abc")}, &wire);
  // Value count (4 bytes) + tag (1) puts the length prefix at offset 5.
  wire[5] = '\xFC';
  wire[6] = '\xFF';
  wire[7] = '\xFF';
  wire[8] = '\xFF';
  size_t offset = 0;
  auto result = DeserializeTuple(wire, &offset);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(TupleStreamTest, StreamYieldsAllTuplesInOrder) {
  TupleStream stream(MakeRelation({
      Tuple{Value::Int64(1), Value::String("x")},
      Tuple{Value::Int64(2), Value::Null()},
      Tuple{Value::Int64(3), Value::String("z")},
  }));
  EXPECT_EQ(stream.num_tuples(), 3u);
  for (int64_t i = 1; i <= 3; ++i) {
    auto t = stream.Next();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ((*t)[0].AsInt64(), i);
  }
  EXPECT_FALSE(stream.Next().has_value());
  EXPECT_FALSE(stream.Next().has_value());  // stays exhausted
}

TEST(TupleStreamTest, RewindRestarts) {
  TupleStream stream(MakeRelation({Tuple{Value::Int64(1), Value::Null()}}));
  ASSERT_TRUE(stream.Next().has_value());
  ASSERT_FALSE(stream.Next().has_value());
  stream.Rewind();
  ASSERT_TRUE(stream.Next().has_value());
}

TEST(TupleStreamTest, SchemaPreserved) {
  TupleStream stream(MakeRelation({}));
  EXPECT_EQ(stream.schema().size(), 2u);
  EXPECT_EQ(stream.schema().column(1).name, "b");
  EXPECT_FALSE(stream.Next().has_value());
}

TEST(TupleStreamTest, WireBytesGrowWithData) {
  TupleStream small(MakeRelation({Tuple{Value::Int64(1), Value::Null()}}));
  TupleStream large(MakeRelation({
      Tuple{Value::Int64(1), Value::String(std::string(1000, 'x'))},
  }));
  EXPECT_GT(large.wire_bytes(), small.wire_bytes() + 900);
}

TEST(TupleStreamTest, RandomRoundTripProperty) {
  Random rng(42);
  for (int iter = 0; iter < 100; ++iter) {
    Tuple t;
    int n = static_cast<int>(rng.Uniform(0, 8));
    for (int i = 0; i < n; ++i) {
      switch (rng.Uniform(0, 3)) {
        case 0:
          t.Append(Value::Null());
          break;
        case 1:
          t.Append(Value::Int64(rng.Uniform(-1000000, 1000000)));
          break;
        case 2:
          t.Append(Value::Double(rng.NextDouble() * 1e6 - 5e5));
          break;
        default:
          t.Append(Value::String(
              rng.NextString(static_cast<size_t>(rng.Uniform(0, 40)))));
      }
    }
    std::string wire;
    SerializeTuple(t, &wire);
    size_t offset = 0;
    auto back = DeserializeTuple(wire, &offset);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(*back, t);
    ASSERT_EQ(offset, wire.size());
  }
}

}  // namespace
}  // namespace silkroute::engine
