#include <gtest/gtest.h>

#include "sql/parser.h"

namespace silkroute::sql {
namespace {

TEST(SqlParserTest, MinimalSelect) {
  auto q = ParseQuery("select 1");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ((*q)->cores.size(), 1u);
  EXPECT_EQ((*q)->cores[0].select_list.size(), 1u);
  EXPECT_TRUE((*q)->cores[0].from.empty());
}

TEST(SqlParserTest, SelectStar) {
  auto q = ParseQuery("select * from T");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_TRUE((*q)->cores[0].select_star);
}

TEST(SqlParserTest, AliasesExplicitAndImplicit) {
  auto q = ParseQuery("select a as x, b y, c from T");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& items = (*q)->cores[0].select_list;
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].alias, "x");
  EXPECT_EQ(items[1].alias, "y");
  EXPECT_EQ(items[2].alias, "");
}

TEST(SqlParserTest, FromListWithAliases) {
  auto q = ParseQuery("select * from Supplier s, Nation as n");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& from = (*q)->cores[0].from;
  ASSERT_EQ(from.size(), 2u);
  const auto& s = static_cast<const BaseTableRef&>(*from[0]);
  EXPECT_EQ(s.table(), "Supplier");
  EXPECT_EQ(s.alias(), "s");
  EXPECT_EQ(s.binding_name(), "s");
  const auto& n = static_cast<const BaseTableRef&>(*from[1]);
  EXPECT_EQ(n.binding_name(), "n");
}

TEST(SqlParserTest, WhereConjunction) {
  auto q = ParseQuery(
      "select * from T where a = 1 and b <> 'x' and c <= 2.5");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*(*q)->cores[0].where, &conjuncts);
  EXPECT_EQ(conjuncts.size(), 3u);
}

TEST(SqlParserTest, OrPrecedenceBelowAnd) {
  auto q = ParseQuery("select * from T where a = 1 and b = 2 or c = 3");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<const Expr*> disjuncts;
  CollectDisjuncts(*(*q)->cores[0].where, &disjuncts);
  EXPECT_EQ(disjuncts.size(), 2u);
}

TEST(SqlParserTest, ParenthesesOverridePrecedence) {
  auto q = ParseQuery("select * from T where a = 1 and (b = 2 or c = 3)");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*(*q)->cores[0].where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  std::vector<const Expr*> disjuncts;
  CollectDisjuncts(*conjuncts[1], &disjuncts);
  EXPECT_EQ(disjuncts.size(), 2u);
}

TEST(SqlParserTest, InnerJoinOn) {
  auto q = ParseQuery(
      "select * from Supplier s join Nation n on s.nationkey = n.nationkey");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& from = (*q)->cores[0].from;
  ASSERT_EQ(from.size(), 1u);
  ASSERT_EQ(from[0]->kind(), TableRef::Kind::kJoin);
  const auto& join = static_cast<const JoinRef&>(*from[0]);
  EXPECT_EQ(join.join_type(), JoinType::kInner);
}

TEST(SqlParserTest, LeftOuterJoin) {
  auto q = ParseQuery(
      "select * from A a left outer join B b on a.x = b.x");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& join =
      static_cast<const JoinRef&>(*(*q)->cores[0].from[0]);
  EXPECT_EQ(join.join_type(), JoinType::kLeftOuter);
}

TEST(SqlParserTest, LeftJoinWithoutOuterKeyword) {
  auto q = ParseQuery("select * from A a left join B b on a.x = b.x");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& join =
      static_cast<const JoinRef&>(*(*q)->cores[0].from[0]);
  EXPECT_EQ(join.join_type(), JoinType::kLeftOuter);
}

TEST(SqlParserTest, DerivedTableRequiresAlias) {
  EXPECT_FALSE(ParseQuery("select * from (select 1)").ok());
  auto q = ParseQuery("select * from (select 1 as x) as D");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->cores[0].from[0]->kind(), TableRef::Kind::kDerivedTable);
}

TEST(SqlParserTest, NestedDerivedUnion) {
  auto q = ParseQuery(
      "select * from A a left outer join "
      "((select 1 as L2, x from B) union (select 2 as L2, y as x from C)) "
      "as Q on (Q.L2 = 1 and a.k = Q.x) or (Q.L2 = 2 and a.k = Q.x)");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& join =
      static_cast<const JoinRef&>(*(*q)->cores[0].from[0]);
  const auto& derived = static_cast<const DerivedTableRef&>(join.right());
  EXPECT_EQ(derived.alias(), "Q");
  EXPECT_EQ(derived.query().cores.size(), 2u);
}

TEST(SqlParserTest, UnionAllFlattens) {
  auto q = ParseQuery("(select 1 as a) union all (select 2 as a)");
  ASSERT_TRUE(q.ok()) << q.status();
  EXPECT_EQ((*q)->cores.size(), 2u);
}

TEST(SqlParserTest, OrderByMultipleKeysAndDirections) {
  auto q = ParseQuery("select a, b from T order by a desc, b asc, a");
  ASSERT_TRUE(q.ok()) << q.status();
  ASSERT_EQ((*q)->order_by.size(), 3u);
  EXPECT_FALSE((*q)->order_by[0].ascending);
  EXPECT_TRUE((*q)->order_by[1].ascending);
  EXPECT_TRUE((*q)->order_by[2].ascending);
}

TEST(SqlParserTest, IsNullAndIsNotNull) {
  auto q = ParseQuery("select * from T where a is null and b is not null");
  ASSERT_TRUE(q.ok()) << q.status();
  std::vector<const Expr*> conjuncts;
  CollectConjuncts(*(*q)->cores[0].where, &conjuncts);
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(conjuncts[0]->kind(), Expr::Kind::kIsNull);
  EXPECT_FALSE(static_cast<const IsNullExpr*>(conjuncts[0])->negated());
  EXPECT_TRUE(static_cast<const IsNullExpr*>(conjuncts[1])->negated());
}

TEST(SqlParserTest, NullLiteralInSelect) {
  auto q = ParseQuery("select null as x");
  ASSERT_TRUE(q.ok()) << q.status();
  const auto& item = (*q)->cores[0].select_list[0];
  ASSERT_EQ(item.expr->kind(), Expr::Kind::kLiteral);
  EXPECT_TRUE(
      static_cast<const LiteralExpr&>(*item.expr).value().is_null());
}

TEST(SqlParserTest, ArithmeticExpression) {
  auto e = ParseExpression("1 + 2 * 3");
  ASSERT_TRUE(e.ok()) << e.status();
  // Multiplication binds tighter: (1 + (2 * 3)).
  const auto& add = static_cast<const BinaryExpr&>(**e);
  EXPECT_EQ(add.op(), BinaryOp::kAdd);
  EXPECT_EQ(static_cast<const BinaryExpr&>(add.right()).op(), BinaryOp::kMul);
}

TEST(SqlParserTest, UnaryMinus) {
  auto e = ParseExpression("-5");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->kind(), Expr::Kind::kBinary);
}

TEST(SqlParserTest, NotExpression) {
  auto e = ParseExpression("not a = 1");
  ASSERT_TRUE(e.ok()) << e.status();
  EXPECT_EQ((*e)->kind(), Expr::Kind::kNot);
}

TEST(SqlParserTest, TrailingGarbageIsError) {
  EXPECT_FALSE(ParseQuery("select 1 from T garbage garbage").ok());
  EXPECT_FALSE(ParseExpression("1 + 2 )").ok());
}

TEST(SqlParserTest, MissingFromTableIsError) {
  EXPECT_FALSE(ParseQuery("select * from").ok());
}

TEST(SqlParserTest, OrderByInsideUnionOperandRejected) {
  EXPECT_FALSE(
      ParseQuery("(select 1 as a order by a) union (select 2 as a)").ok());
}

TEST(SqlParserTest, ToSqlRoundTrips) {
  const char* queries[] = {
      "select 1 as L1, s.suppkey as v1_1 from Supplier s where "
      "s.suppkey = 3 order by v1_1",
      "select * from A a left outer join B b on a.x = b.x and b.y = 2",
      "(select 1 as a) union all (select 2 as a) order by a",
      "select a, b from T where a = 1 and (b = 2 or c = 3)",
  };
  for (const char* text : queries) {
    auto q1 = ParseQuery(text);
    ASSERT_TRUE(q1.ok()) << text << ": " << q1.status();
    std::string sql1 = (*q1)->ToSql();
    auto q2 = ParseQuery(sql1);
    ASSERT_TRUE(q2.ok()) << sql1 << ": " << q2.status();
    EXPECT_EQ(sql1, (*q2)->ToSql()) << text;
  }
}

TEST(SqlParserTest, CloneProducesIdenticalSql) {
  auto q = ParseQuery(
      "select a from (select b as a from T) as D where a = 1 order by a");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->ToSql(), (*q)->CloneQuery()->ToSql());
}

}  // namespace
}  // namespace silkroute::sql
