// Scaling properties: memory constancy and output linearity as the
// database grows — the property that motivates the sorted approach for
// "XML views that exceed main memory" (paper Secs. 1 and 3.3).
#include <gtest/gtest.h>

#include <sstream>

#include "silkroute/partition.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

struct ScaleSample {
  size_t db_bytes = 0;
  size_t xml_bytes = 0;
  size_t rows = 0;
  size_t suppliers = 0;
  TaggerStats tagger;
};

ScaleSample RunAtScale(double scale, uint64_t mask) {
  auto db = MakeTinyTpch(scale);
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  EXPECT_TRUE(tree.ok());
  PublishOptions options;
  options.document_element = "suppliers";
  std::ostringstream out;
  auto metrics = publisher.ExecutePlan(*tree, mask, options, &out);
  EXPECT_TRUE(metrics.ok()) << metrics.status();
  ScaleSample sample;
  sample.db_bytes = db->TotalByteSize();
  sample.xml_bytes = metrics->xml_bytes;
  sample.rows = metrics->rows;
  sample.tagger = metrics->tagger;
  auto doc = xml::ParseXml(out.str());
  EXPECT_TRUE(doc.ok());
  sample.suppliers = (*doc)->Children("supplier").size();
  return sample;
}

TEST(ScaleTest, TaggerMemoryIndependentOfDatabaseSize) {
  // 8x more data, identical buffering: the constant-memory claim.
  ScaleSample small = RunAtScale(0.002, 0x1E8);
  ScaleSample large = RunAtScale(0.016, 0x1E8);
  EXPECT_GT(large.db_bytes, small.db_bytes * 4);
  EXPECT_GT(large.rows, small.rows * 4);
  EXPECT_EQ(large.tagger.peak_buffered_tuples,
            small.tagger.peak_buffered_tuples);
  EXPECT_EQ(large.tagger.max_open_depth, small.tagger.max_open_depth);
}

TEST(ScaleTest, OutputGrowsRoughlyLinearly) {
  ScaleSample a = RunAtScale(0.002, 0x1E8);
  ScaleSample b = RunAtScale(0.008, 0x1E8);
  double db_ratio = static_cast<double>(b.db_bytes) /
                    static_cast<double>(a.db_bytes);
  double xml_ratio = static_cast<double>(b.xml_bytes) /
                     static_cast<double>(a.xml_bytes);
  EXPECT_GT(xml_ratio, db_ratio * 0.4);
  EXPECT_LT(xml_ratio, db_ratio * 2.5);
}

TEST(ScaleTest, SupplierCountMatchesTableAtEveryScale) {
  for (double scale : {0.002, 0.006}) {
    ScaleSample sample = RunAtScale(scale, 0);
    auto db = MakeTinyTpch(scale);
    auto table = db->GetTable("Supplier");
    ASSERT_TRUE(table.ok());
    EXPECT_EQ(sample.suppliers, (*table)->num_rows()) << scale;
  }
}

TEST(ScaleTest, PlansAgreeAtLargerScale) {
  // Cross-check plan equivalence on a bigger instance than the unit tests
  // use (the property test runs at 0.001).
  auto db = MakeTinyTpch(0.01);
  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query2Rxl());
  ASSERT_TRUE(tree.ok());
  std::string reference;
  for (uint64_t mask : {uint64_t{0}, uint64_t{511}, uint64_t{0x1E8},
                        uint64_t{42}}) {
    PublishOptions options;
    options.document_element = "suppliers";
    std::ostringstream out;
    auto metrics = publisher.ExecutePlan(*tree, mask, options, &out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    if (reference.empty()) {
      reference = out.str();
    } else {
      EXPECT_EQ(out.str(), reference) << mask;
    }
  }
}

}  // namespace
}  // namespace silkroute::core
