#include <gtest/gtest.h>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace silkroute {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::NotFound("missing");
  Status t = s;
  EXPECT_EQ(t.code(), StatusCode::kNotFound);
  EXPECT_EQ(t.message(), "missing");
  EXPECT_EQ(s, t);
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status s = Status::Internal("x");
  Status t = std::move(s);
  EXPECT_EQ(t.code(), StatusCode::kInternal);
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kUnimplemented, StatusCode::kInternal,
        StatusCode::kParseError, StatusCode::kTypeError,
        StatusCode::kConstraintViolation, StatusCode::kTimeout,
        StatusCode::kUnavailable, StatusCode::kResourceExhausted}) {
    EXPECT_STRNE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EveryFactoryRoundTripsCodeNameAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
    const char* name;
  };
  const Case cases[] = {
      {Status::InvalidArgument("m"), StatusCode::kInvalidArgument,
       "InvalidArgument"},
      {Status::NotFound("m"), StatusCode::kNotFound, "NotFound"},
      {Status::AlreadyExists("m"), StatusCode::kAlreadyExists,
       "AlreadyExists"},
      {Status::OutOfRange("m"), StatusCode::kOutOfRange, "OutOfRange"},
      {Status::Unimplemented("m"), StatusCode::kUnimplemented,
       "Unimplemented"},
      {Status::Internal("m"), StatusCode::kInternal, "Internal"},
      {Status::ParseError("m"), StatusCode::kParseError, "ParseError"},
      {Status::TypeError("m"), StatusCode::kTypeError, "TypeError"},
      {Status::ConstraintViolation("m"), StatusCode::kConstraintViolation,
       "ConstraintViolation"},
      {Status::Timeout("m"), StatusCode::kTimeout, "Timeout"},
      {Status::Unavailable("m"), StatusCode::kUnavailable, "Unavailable"},
      {Status::ResourceExhausted("m"), StatusCode::kResourceExhausted,
       "ResourceExhausted"},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "m");
    EXPECT_STREQ(StatusCodeToString(c.code), c.name);
    EXPECT_EQ(c.status.ToString(), std::string(c.name) + ": m");
    // Copy and equality survive the round-trip for every code.
    Status copy = c.status;
    EXPECT_EQ(copy, c.status);
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::Timeout("slow"); };
  auto outer = [&]() -> Status {
    SILK_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_EQ(outer().code(), StatusCode::kTimeout);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, AssignOrReturnExtracts) {
  auto make = []() -> Result<std::string> { return std::string("hi"); };
  auto use = [&]() -> Result<size_t> {
    SILK_ASSIGN_OR_RETURN(std::string s, make());
    return s.size();
  };
  auto r = use();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 2u);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto make = []() -> Result<std::string> {
    return Status::Internal("boom");
  };
  auto use = [&]() -> Result<size_t> {
    SILK_ASSIGN_OR_RETURN(std::string s, make());
    return s.size();
  };
  EXPECT_EQ(use().status().code(), StatusCode::kInternal);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 7);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"a"}, ","), "a");
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split(",a,", ','), (std::vector<std::string>{"", "a", ""}));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y  "), "x y");
  EXPECT_EQ(StripWhitespace("\t\n"), "");
  EXPECT_EQ(StripWhitespace("abc"), "abc");
}

TEST(StringUtilTest, CaseConversions) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("foo", "foobar"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("bar", "foobar"));
}

TEST(StringUtilTest, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StringPrintf("%05d", 7), "00007");
}

TEST(RandomTest, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.Next() != b.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomTest, UniformInRange) {
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformSingletonRange) {
  Random rng(7);
  EXPECT_EQ(rng.Uniform(3, 3), 3);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextStringLengthAndAlphabet) {
  Random rng(11);
  std::string s = rng.NextString(32);
  EXPECT_EQ(s.size(), 32u);
  for (char c : s) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  EXPECT_GE(t.ElapsedMicros(), 0.0);
  EXPECT_GE(t.ElapsedMillis(), 0.0);
}

TEST(TimerTest, RestartResets) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + i;
  double before = t.ElapsedMicros();
  t.Restart();
  EXPECT_LE(t.ElapsedMicros(), before + 1e6);
}

}  // namespace
}  // namespace silkroute
