#include <gtest/gtest.h>

#include "engine/estimator.h"
#include "engine/stats.h"
#include "tpch/generator.h"

namespace silkroute::engine {
namespace {

class StatsEstimatorTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = new Database();
    tpch::TpchConfig config;
    config.scale_factor = 0.005;
    ASSERT_TRUE(tpch::GenerateTpch(config, db_).ok());
    stats_ = new DatabaseStats(DatabaseStats::Collect(*db_));
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete db_;
    stats_ = nullptr;
    db_ = nullptr;
  }

  QueryEstimate Estimate(const std::string& sql) {
    CostEstimator est(&db_->catalog(), stats_);
    auto result = est.EstimateSql(sql);
    EXPECT_TRUE(result.ok()) << sql << ": " << result.status();
    return result.ok() ? *result : QueryEstimate{};
  }

  static Database* db_;
  static DatabaseStats* stats_;
};

Database* StatsEstimatorTest::db_ = nullptr;
DatabaseStats* StatsEstimatorTest::stats_ = nullptr;

TEST_F(StatsEstimatorTest, RowCountsMatchTables) {
  auto t = db_->GetTable("Supplier");
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(stats_->RowCount("Supplier"),
                   static_cast<double>((*t)->num_rows()));
  EXPECT_DOUBLE_EQ(stats_->RowCount("Missing"), 0.0);
}

TEST_F(StatsEstimatorTest, DistinctCountOfKeyEqualsRowCount) {
  EXPECT_DOUBLE_EQ(stats_->DistinctCount("Supplier", "suppkey"),
                   stats_->RowCount("Supplier"));
}

TEST_F(StatsEstimatorTest, DistinctCountOfNationKeyInSupplierIsSmall) {
  EXPECT_LE(stats_->DistinctCount("Supplier", "nationkey"), 25.0);
}

TEST_F(StatsEstimatorTest, ColumnStatsExposeWidths) {
  const ColumnStats* cs = stats_->GetColumn("Supplier", "name");
  ASSERT_NE(cs, nullptr);
  EXPECT_GT(cs->avg_width_bytes, 8.0);  // strings wider than ints
  EXPECT_EQ(stats_->GetColumn("Supplier", "zzz"), nullptr);
  EXPECT_EQ(stats_->GetColumn("Zzz", "name"), nullptr);
}

TEST_F(StatsEstimatorTest, ScanEstimateMatchesTableCardinality) {
  QueryEstimate e = Estimate("select * from Supplier");
  EXPECT_DOUBLE_EQ(e.rows, stats_->RowCount("Supplier"));
  EXPECT_GT(e.width_bytes, 0);
}

TEST_F(StatsEstimatorTest, FilterReducesCardinality) {
  QueryEstimate all = Estimate("select * from Supplier s");
  QueryEstimate filtered =
      Estimate("select * from Supplier s where s.suppkey = 1");
  EXPECT_LT(filtered.rows, all.rows);
  EXPECT_LE(filtered.rows, 2.0);  // key equality: ~1 row
}

TEST_F(StatsEstimatorTest, KeyFkJoinEstimatesChildCardinality) {
  // Supplier x Nation on nationkey: one nation per supplier.
  QueryEstimate e = Estimate(
      "select * from Supplier s, Nation n "
      "where s.nationkey = n.nationkey");
  double suppliers = stats_->RowCount("Supplier");
  EXPECT_GT(e.rows, suppliers * 0.5);
  EXPECT_LT(e.rows, suppliers * 2.0);
}

TEST_F(StatsEstimatorTest, JoinCostExceedsScanCost) {
  QueryEstimate scan = Estimate("select * from PartSupp");
  QueryEstimate join = Estimate(
      "select * from PartSupp ps, Part p where ps.partkey = p.partkey");
  EXPECT_GT(join.cost, scan.cost);
}

TEST_F(StatsEstimatorTest, OrderByAddsCost) {
  QueryEstimate plain = Estimate("select * from PartSupp");
  QueryEstimate sorted =
      Estimate("select * from PartSupp ps order by ps.partkey");
  EXPECT_GT(sorted.cost, plain.cost);
}

TEST_F(StatsEstimatorTest, UnionAddsRowsAndCosts) {
  QueryEstimate single = Estimate("select suppkey as k from Supplier");
  QueryEstimate both = Estimate(
      "(select suppkey as k from Supplier) union all "
      "(select partkey as k from Part)");
  EXPECT_GT(both.rows, single.rows);
  EXPECT_GT(both.cost, single.cost);
}

TEST_F(StatsEstimatorTest, LeftOuterJoinKeepsLeftCardinality) {
  QueryEstimate e = Estimate(
      "select * from Supplier s left outer join PartSupp ps "
      "on s.suppkey = ps.suppkey and ps.availqty = 123456");
  EXPECT_GE(e.rows, stats_->RowCount("Supplier") * 0.99);
}

TEST_F(StatsEstimatorTest, ProjectionNarrowsWidth) {
  QueryEstimate star = Estimate("select * from Supplier s");
  QueryEstimate narrow = Estimate("select s.suppkey from Supplier s");
  EXPECT_LT(narrow.width_bytes, star.width_bytes);
}

TEST_F(StatsEstimatorTest, DerivedTableEstimated) {
  QueryEstimate e = Estimate(
      "select D.k from (select s.suppkey as k from Supplier s) as D");
  EXPECT_DOUBLE_EQ(e.rows, stats_->RowCount("Supplier"));
}

TEST_F(StatsEstimatorTest, RequestCounterIncrements) {
  CostEstimator est(&db_->catalog(), stats_);
  EXPECT_EQ(est.num_requests(), 0u);
  ASSERT_TRUE(est.EstimateSql("select * from Supplier").ok());
  ASSERT_TRUE(est.EstimateSql("select * from Part").ok());
  EXPECT_EQ(est.num_requests(), 2u);
  est.ResetRequestCount();
  EXPECT_EQ(est.num_requests(), 0u);
}

TEST_F(StatsEstimatorTest, DataSizeIsRowsTimesWidth) {
  QueryEstimate e = Estimate("select * from Supplier");
  EXPECT_DOUBLE_EQ(e.data_size(), e.rows * e.width_bytes);
}

TEST_F(StatsEstimatorTest, DistinctCapsCardinality) {
  QueryEstimate all = Estimate("select s.nationkey from Supplier s");
  QueryEstimate distinct =
      Estimate("select distinct s.nationkey from Supplier s");
  EXPECT_LT(distinct.rows, all.rows);
  EXPECT_LE(distinct.rows, 25.0);  // at most one row per nation
}

TEST_F(StatsEstimatorTest, DisjunctiveOnSelectivityIsSumOfBranches) {
  QueryEstimate one = Estimate(
      "select * from Supplier s left outer join Nation n "
      "on s.nationkey = n.nationkey");
  QueryEstimate two = Estimate(
      "select * from Supplier s left outer join Nation n "
      "on (s.nationkey = n.nationkey) or (s.suppkey = n.nationkey)");
  EXPECT_GE(two.rows, one.rows);
}

TEST_F(StatsEstimatorTest, UnknownTableIsError) {
  CostEstimator est(&db_->catalog(), stats_);
  EXPECT_FALSE(est.EstimateSql("select * from Nope").ok());
}

}  // namespace
}  // namespace silkroute::engine
