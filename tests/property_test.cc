// Property tests over randomly generated RXL views: for any view built
// from foreign-key-respecting nested blocks over the TPC-H schema, every
// partition plan, in both SQL-generation styles, with and without
// reduction, must produce the identical XML document. This generalizes the
// paper-query integration sweep to arbitrary view shapes (deep chains,
// wide branching, reverse joins, filters).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/random.h"
#include "silkroute/dtdgen.h"
#include "silkroute/partition.h"
#include "silkroute/publisher.h"
#include "tests/test_util.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

/// A join option: extend a scope bound to `from_table` with `to_table`
/// via equalities on the paired columns.
struct JoinOption {
  const char* from_table;
  const char* from_col;
  const char* to_table;
  const char* to_col;
};

// Forward (FK) and reverse joins of the TPC-H fragment.
const JoinOption kJoins[] = {
    {"Supplier", "nationkey", "Nation", "nationkey"},
    {"Customer", "nationkey", "Nation", "nationkey"},
    {"Nation", "regionkey", "Region", "regionkey"},
    {"PartSupp", "partkey", "Part", "partkey"},
    {"PartSupp", "suppkey", "Supplier", "suppkey"},
    {"Orders", "custkey", "Customer", "custkey"},
    {"LineItem", "orderkey", "Orders", "orderkey"},
    // Reverse direction (one-to-many):
    {"Nation", "nationkey", "Supplier", "nationkey"},
    {"Nation", "nationkey", "Customer", "nationkey"},
    {"Region", "regionkey", "Nation", "regionkey"},
    {"Part", "partkey", "PartSupp", "partkey"},
    {"Supplier", "suppkey", "PartSupp", "suppkey"},
    {"Customer", "custkey", "Orders", "custkey"},
    {"Orders", "orderkey", "LineItem", "orderkey"},
};

const char* const kRootTables[] = {"Region", "Nation", "Supplier",
                                   "Customer", "Part", "Orders"};

/// Columns safe to emit as values per table.
const std::pair<const char*, const char*> kValueColumns[] = {
    {"Region", "name"},     {"Nation", "name"},    {"Supplier", "name"},
    {"Supplier", "addr"},   {"Customer", "name"},  {"Customer", "ph"},
    {"Part", "name"},       {"Part", "brand"},     {"PartSupp", "availqty"},
    {"Orders", "status"},   {"Orders", "date"},    {"LineItem", "qty"},
};

class ViewGenerator {
 public:
  explicit ViewGenerator(uint64_t seed) : rng_(seed) {}

  rxl::RxlQuery Generate() {
    var_counter_ = 0;
    tag_counter_ = 0;
    rxl::RxlQuery query;
    const char* root_table =
        kRootTables[rng_.Uniform(0, std::size(kRootTables) - 1)];
    std::string var = FreshVar();
    query.root.from.push_back({root_table, var});
    rxl::Content root;
    root.kind = rxl::Content::Kind::kElement;
    root.element = GenElement({{root_table, var}}, /*depth=*/0);
    query.root.construct.push_back(std::move(root));
    return query;
  }

 private:
  using Scope = std::vector<std::pair<std::string, std::string>>;  // table,var

  std::string FreshVar() { return "v" + std::to_string(var_counter_++); }
  std::string FreshTag() { return "e" + std::to_string(tag_counter_++); }

  static const char* KeyColumnOf(const std::string& table) {
    if (table == "Region") return "regionkey";
    if (table == "Nation") return "nationkey";
    if (table == "Supplier") return "suppkey";
    if (table == "Customer") return "custkey";
    if (table == "Part") return "partkey";
    if (table == "PartSupp") return "partkey";
    if (table == "Orders") return "orderkey";
    return "orderkey";  // LineItem
  }

  rxl::Content MakeValue(const Scope& scope) {
    rxl::Content c;
    c.kind = rxl::Content::Kind::kFieldRef;
    // Pick a scoped binding that has a registered value column.
    for (int attempt = 0; attempt < 16; ++attempt) {
      const auto& [table, var] =
          scope[static_cast<size_t>(rng_.Uniform(0, static_cast<int64_t>(scope.size()) - 1))];
      std::vector<const char*> columns;
      for (const auto& [t, col] : kValueColumns) {
        if (table == t) columns.push_back(col);
      }
      if (columns.empty()) continue;
      c.field = {var,
                 columns[static_cast<size_t>(
                     rng_.Uniform(0, static_cast<int64_t>(columns.size()) - 1))]};
      return c;
    }
    // Fall back to the first binding's first value column or a text node.
    c.kind = rxl::Content::Kind::kText;
    c.text = "x";
    return c;
  }

  std::unique_ptr<rxl::Element> GenElement(const Scope& scope, int depth) {
    auto element = std::make_unique<rxl::Element>();
    element->tag = FreshTag();
    const int items = static_cast<int>(rng_.Uniform(1, 3));
    for (int i = 0; i < items; ++i) {
      const int64_t kind = rng_.Uniform(0, 9);
      if (kind < 4 || depth >= 3) {
        element->content.push_back(MakeValue(scope));
      } else if (kind < 6) {
        // Child element in the same scope.
        rxl::Content c;
        c.kind = rxl::Content::Kind::kElement;
        c.element = GenElement(scope, depth + 1);
        element->content.push_back(std::move(c));
      } else {
        // Nested block joining a new table.
        std::vector<const JoinOption*> options;
        for (const auto& join : kJoins) {
          for (const auto& [table, var] : scope) {
            if (table == join.from_table) options.push_back(&join);
          }
        }
        if (options.empty()) {
          element->content.push_back(MakeValue(scope));
          continue;
        }
        const JoinOption* join = options[static_cast<size_t>(
            rng_.Uniform(0, static_cast<int64_t>(options.size()) - 1))];
        std::string from_var;
        for (const auto& [table, var] : scope) {
          if (table == join->from_table) from_var = var;
        }
        std::string new_var = FreshVar();
        auto block = std::make_unique<rxl::Block>();
        block->from.push_back({join->to_table, new_var});
        rxl::Condition cond;
        cond.lhs.kind = rxl::Operand::Kind::kField;
        cond.lhs.field = {from_var, join->from_col};
        cond.op = rxl::CondOp::kEq;
        cond.rhs.kind = rxl::Operand::Kind::kField;
        cond.rhs.field = {new_var, join->to_col};
        block->where.push_back(std::move(cond));
        // Occasionally add a literal filter, exercising '?'/'*' labels and
        // partially-filtered branches.
        if (rng_.Uniform(0, 3) == 0) {
          rxl::Condition filter;
          filter.lhs.kind = rxl::Operand::Kind::kField;
          filter.lhs.field = {new_var, KeyColumnOf(join->to_table)};
          filter.op = rng_.Uniform(0, 1) == 0 ? rxl::CondOp::kLt
                                              : rxl::CondOp::kGt;
          filter.rhs.kind = rxl::Operand::Kind::kLiteral;
          filter.rhs.literal = Value::Int64(rng_.Uniform(1, 40));
          block->where.push_back(std::move(filter));
        }
        Scope inner = scope;
        inner.emplace_back(join->to_table, new_var);
        rxl::Content inner_elem;
        inner_elem.kind = rxl::Content::Kind::kElement;
        inner_elem.element = GenElement(inner, depth + 1);
        block->construct.push_back(std::move(inner_elem));
        rxl::Content c;
        c.kind = rxl::Content::Kind::kBlock;
        c.block = std::move(block);
        element->content.push_back(std::move(c));
      }
    }
    return element;
  }

  Random rng_;
  int var_counter_ = 0;
  int tag_counter_ = 0;
};

class RandomViewTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTinyTpch(0.001).release();
    publisher_ = new Publisher(db_);
  }
  static void TearDownTestSuite() {
    delete publisher_;
    delete db_;
    publisher_ = nullptr;
    db_ = nullptr;
  }
  static Database* db_;
  static Publisher* publisher_;
};

Database* RandomViewTest::db_ = nullptr;
Publisher* RandomViewTest::publisher_ = nullptr;

TEST_P(RandomViewTest, AllPlansProduceIdenticalXml) {
  ViewGenerator generator(GetParam());
  rxl::RxlQuery view = generator.Generate();
  auto tree = ViewTree::Build(view, db_->catalog());
  ASSERT_TRUE(tree.ok()) << tree.status() << "\nview:\n" << view.ToString();
  ASSERT_GE(tree->num_nodes(), 1u);

  // Sample the plan space: all masks when small, a stratified sample
  // otherwise.
  std::vector<uint64_t> masks;
  const uint64_t num_plans = uint64_t{1} << tree->num_edges();
  if (num_plans <= 32) {
    for (uint64_t m = 0; m < num_plans; ++m) masks.push_back(m);
  } else {
    Random mask_rng(GetParam() ^ 0xABCDu);
    masks = {0, num_plans - 1};
    for (int i = 0; i < 24; ++i) {
      masks.push_back(static_cast<uint64_t>(
          mask_rng.Uniform(1, static_cast<int64_t>(num_plans) - 2)));
    }
  }

  std::string reference;
  for (uint64_t mask : masks) {
    for (auto style : {SqlGenStyle::kOuterJoin, SqlGenStyle::kOuterUnion}) {
      for (bool reduce : {false, true}) {
        PublishOptions opt;
        opt.style = style;
        opt.reduce = reduce;
        opt.collect_sql = false;
        opt.document_element = "doc";
        std::ostringstream out;
        auto metrics = publisher_->ExecutePlan(*tree, mask, opt, &out);
        ASSERT_TRUE(metrics.ok())
            << metrics.status() << "\nmask=" << mask << " style="
            << SqlGenStyleToString(style) << " reduce=" << reduce
            << "\nview:\n" << view.ToString() << "\ntree:\n"
            << tree->ToString();
        EXPECT_EQ(metrics->tagger.forced_ancestor_opens, 0u);
        if (reference.empty()) {
          reference = out.str();
          // The reference must be well-formed and valid against the DTD
          // derived from the view tree's multiplicity labels.
          auto doc = xml::ParseXml(reference);
          ASSERT_TRUE(doc.ok()) << reference;
          auto dtd = GenerateDtd(*tree, "doc");
          ASSERT_TRUE(dtd.ok()) << dtd.status();
          Status valid = dtd->Validate(**doc);
          ASSERT_TRUE(valid.ok())
              << valid << "\nview:\n" << view.ToString() << "\ntree:\n"
              << tree->ToString();
        } else {
          ASSERT_EQ(out.str(), reference)
              << "mask=" << mask << " style=" << SqlGenStyleToString(style)
              << " reduce=" << reduce << "\nview:\n" << view.ToString();
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomViewTest,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

}  // namespace
}  // namespace silkroute::core
