#include <gtest/gtest.h>

#include "silkroute/queries.h"
#include "xml/dtd.h"
#include "xml/reader.h"

namespace silkroute::xml {
namespace {

Dtd MustParseDtd(std::string_view text) {
  auto dtd = ParseDtd(text);
  EXPECT_TRUE(dtd.ok()) << dtd.status();
  return dtd.ok() ? std::move(dtd).value() : Dtd{};
}

Status ValidateDoc(const Dtd& dtd, std::string_view xml) {
  auto doc = ParseXml(xml);
  EXPECT_TRUE(doc.ok()) << doc.status();
  if (!doc.ok()) return doc.status();
  return dtd.Validate(**doc);
}

TEST(DtdParseTest, PcdataElement) {
  Dtd dtd = MustParseDtd("<!ELEMENT name (#PCDATA)>");
  auto decl = dtd.GetElement("name");
  ASSERT_TRUE(decl.ok());
  EXPECT_EQ((*decl)->category, ElementDecl::Category::kPcdata);
}

TEST(DtdParseTest, EmptyAndAny) {
  Dtd dtd = MustParseDtd("<!ELEMENT e EMPTY><!ELEMENT a ANY>");
  EXPECT_EQ((*dtd.GetElement("e"))->category, ElementDecl::Category::kEmpty);
  EXPECT_EQ((*dtd.GetElement("a"))->category, ElementDecl::Category::kAny);
}

TEST(DtdParseTest, SequenceWithOccurrences) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a, b?, c*, d+)>");
  auto decl = dtd.GetElement("s");
  ASSERT_TRUE(decl.ok());
  const ContentParticle& content = (*decl)->content;
  ASSERT_EQ(content.kind, ContentParticle::Kind::kSequence);
  ASSERT_EQ(content.children.size(), 4u);
  EXPECT_EQ(content.children[0].occurrence, ContentParticle::Occurrence::kOne);
  EXPECT_EQ(content.children[1].occurrence,
            ContentParticle::Occurrence::kOptional);
  EXPECT_EQ(content.children[2].occurrence,
            ContentParticle::Occurrence::kStar);
  EXPECT_EQ(content.children[3].occurrence,
            ContentParticle::Occurrence::kPlus);
}

TEST(DtdParseTest, ChoiceGroup) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a | b | c)*>");
  const ContentParticle& c = (*dtd.GetElement("s"))->content;
  EXPECT_EQ(c.kind, ContentParticle::Kind::kChoice);
  EXPECT_EQ(c.occurrence, ContentParticle::Occurrence::kStar);
  EXPECT_EQ(c.children.size(), 3u);
}

TEST(DtdParseTest, NestedGroups) {
  Dtd dtd = MustParseDtd("<!ELEMENT s ((a, b) | c)+>");
  const ContentParticle& c = (*dtd.GetElement("s"))->content;
  ASSERT_EQ(c.kind, ContentParticle::Kind::kChoice);
  EXPECT_EQ(c.children[0].kind, ContentParticle::Kind::kSequence);
}

TEST(DtdParseTest, MixedContent) {
  Dtd dtd = MustParseDtd("<!ELEMENT p (#PCDATA | em | strong)*>");
  auto decl = dtd.GetElement("p");
  ASSERT_TRUE(decl.ok());
  EXPECT_EQ((*decl)->category, ElementDecl::Category::kMixed);
  EXPECT_EQ((*decl)->mixed_names.size(), 2u);
}

TEST(DtdParseTest, AttlistIgnored) {
  Dtd dtd = MustParseDtd(
      "<!ELEMENT a (#PCDATA)><!ATTLIST a id ID #REQUIRED>");
  EXPECT_TRUE(dtd.HasElement("a"));
}

TEST(DtdParseTest, CommentsSkipped) {
  Dtd dtd = MustParseDtd("<!-- c --><!ELEMENT a (#PCDATA)><!-- d -->");
  EXPECT_TRUE(dtd.HasElement("a"));
}

TEST(DtdParseTest, ErrorsOnGarbage) {
  EXPECT_FALSE(ParseDtd("<!ELEMENT broken").ok());
  EXPECT_FALSE(ParseDtd("<!WRONG a (b)>").ok());
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (b,c|d)>").ok());  // mixed separators
  EXPECT_FALSE(ParseDtd("<!ELEMENT a (#PCDATA | b)>").ok());  // missing '*'
}

TEST(DtdParseTest, DuplicateDeclarationIsError) {
  EXPECT_FALSE(
      ParseDtd("<!ELEMENT a (#PCDATA)><!ELEMENT a (#PCDATA)>").ok());
}

TEST(DtdValidateTest, PcdataAcceptsTextRejectsChildren) {
  Dtd dtd = MustParseDtd("<!ELEMENT a (#PCDATA)>");
  EXPECT_TRUE(ValidateDoc(dtd, "<a>some text</a>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<a><b/></a>").ok());
}

TEST(DtdValidateTest, EmptyRejectsAnyContent) {
  Dtd dtd = MustParseDtd("<!ELEMENT a EMPTY>");
  EXPECT_TRUE(ValidateDoc(dtd, "<a/>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<a>x</a>").ok());
}

TEST(DtdValidateTest, SequenceOrderEnforced) {
  Dtd dtd = MustParseDtd(
      "<!ELEMENT s (a, b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>");
  EXPECT_TRUE(ValidateDoc(dtd, "<s><a/><b/></s>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<s><b/><a/></s>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<s><a/></s>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<s><a/><b/><b/></s>").ok());
}

TEST(DtdValidateTest, StarAcceptsZeroOrMany) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a*)><!ELEMENT a EMPTY>");
  EXPECT_TRUE(ValidateDoc(dtd, "<s/>").ok());
  EXPECT_TRUE(ValidateDoc(dtd, "<s><a/><a/><a/><a/></s>").ok());
}

TEST(DtdValidateTest, PlusRequiresAtLeastOne) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a+)><!ELEMENT a EMPTY>");
  EXPECT_FALSE(ValidateDoc(dtd, "<s/>").ok());
  EXPECT_TRUE(ValidateDoc(dtd, "<s><a/><a/></s>").ok());
}

TEST(DtdValidateTest, OptionalAcceptsZeroOrOne) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a?)><!ELEMENT a EMPTY>");
  EXPECT_TRUE(ValidateDoc(dtd, "<s/>").ok());
  EXPECT_TRUE(ValidateDoc(dtd, "<s><a/></s>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<s><a/><a/></s>").ok());
}

TEST(DtdValidateTest, ChoiceAcceptsEitherBranch) {
  Dtd dtd = MustParseDtd(
      "<!ELEMENT s (a | b)><!ELEMENT a EMPTY><!ELEMENT b EMPTY>");
  EXPECT_TRUE(ValidateDoc(dtd, "<s><a/></s>").ok());
  EXPECT_TRUE(ValidateDoc(dtd, "<s><b/></s>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<s><a/><b/></s>").ok());
}

TEST(DtdValidateTest, ElementContentRejectsCharacterData) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a)><!ELEMENT a EMPTY>");
  EXPECT_FALSE(ValidateDoc(dtd, "<s>text<a/></s>").ok());
  // Whitespace between children is fine.
  EXPECT_TRUE(ValidateDoc(dtd, "<s>\n  <a/>\n</s>").ok());
}

TEST(DtdValidateTest, UndeclaredElementIsError) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a)><!ELEMENT a EMPTY>");
  EXPECT_FALSE(ValidateDoc(dtd, "<s><z/></s>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<zzz/>").ok());
}

TEST(DtdValidateTest, MixedContentRestrictsChildNames) {
  Dtd dtd = MustParseDtd(
      "<!ELEMENT p (#PCDATA | em)*><!ELEMENT em (#PCDATA)>");
  EXPECT_TRUE(ValidateDoc(dtd, "<p>a<em>b</em>c</p>").ok());
  EXPECT_FALSE(ValidateDoc(dtd, "<p><strong/></p>").ok());
}

TEST(DtdValidateTest, LongChildListIsLinear) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a*)><!ELEMENT a EMPTY>");
  std::string doc = "<s>";
  for (int i = 0; i < 20000; ++i) doc += "<a/>";
  doc += "</s>";
  EXPECT_TRUE(ValidateDoc(dtd, doc).ok());
}

TEST(DtdValidateTest, PaperSupplierDtdParses) {
  Dtd dtd = MustParseDtd(core::SupplierDtd());
  EXPECT_EQ(dtd.num_elements(), 8u);
  EXPECT_TRUE(
      ValidateDoc(dtd,
                  "<supplier><name>s</name><nation>n</nation>"
                  "<region>r</region>"
                  "<part><name>p</name>"
                  "<order><orderkey>1</orderkey><customer>c</customer>"
                  "<nation>x</nation></order></part></supplier>")
          .ok());
  // part before region violates the sequence.
  EXPECT_FALSE(
      ValidateDoc(dtd,
                  "<supplier><name>s</name><nation>n</nation>"
                  "<part><name>p</name></part><region>r</region></supplier>")
          .ok());
}

TEST(DtdValidateTest, DeclRoundTripsThroughToString) {
  Dtd dtd = MustParseDtd("<!ELEMENT s (a, (b | c)*, d?)>");
  auto decl = dtd.GetElement("s");
  ASSERT_TRUE(decl.ok());
  // Re-parse the printed declaration and check it is accepted.
  auto again = ParseDtd((*decl)->ToString());
  ASSERT_TRUE(again.ok()) << (*decl)->ToString();
  EXPECT_TRUE(again->HasElement("s"));
}

}  // namespace
}  // namespace silkroute::xml
