#include "silkroute/source.h"

#include <gtest/gtest.h>

#include <sstream>

#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;
using testutil::MustBuildTree;
using testutil::NodeByName;

class SourceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTinyTpch().release();
    tree_ = new ViewTree(MustBuildTree(Query1Rxl(), db_->catalog()));
  }
  static void TearDownTestSuite() {
    delete tree_;
    delete db_;
    tree_ = nullptr;
    db_ = nullptr;
  }

  bool Permissible(uint64_t mask, const SourceDescription& source,
                   bool reduce = true,
                   SqlGenStyle style = SqlGenStyle::kOuterJoin) {
    auto r = PlanPermissible(*tree_, mask, style, reduce, source);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() && *r;
  }

  static Database* db_;
  static ViewTree* tree_;
};

Database* SourceTest::db_ = nullptr;
ViewTree* SourceTest::tree_ = nullptr;

TEST_F(SourceTest, FullFeaturedSourceAllowsEverything) {
  SourceDescription full;
  for (uint64_t mask : {uint64_t{0}, uint64_t{511}, uint64_t{0x1E8}}) {
    EXPECT_TRUE(Permissible(mask, full)) << mask;
  }
}

TEST_F(SourceTest, FullyPartitionedAlwaysPermissible) {
  // Paper: "a fully partitioned plan has no edges and requires none of
  // these constructs".
  SourceDescription nothing;
  nothing.supports_outer_join = false;
  nothing.supports_union = false;
  for (auto style : {SqlGenStyle::kOuterJoin, SqlGenStyle::kOuterUnion}) {
    for (bool reduce : {false, true}) {
      auto r = PlanPermissible(*tree_, 0, style, reduce, nothing);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(*r);
    }
  }
}

TEST_F(SourceTest, UnifiedNeedsOuterJoin) {
  SourceDescription no_oj;
  no_oj.supports_outer_join = false;
  EXPECT_FALSE(Permissible(511, no_oj, /*reduce=*/true));
  EXPECT_FALSE(Permissible(511, no_oj, /*reduce=*/false));
}

TEST_F(SourceTest, ReducedOneEdgesNeedNoOuterJoin) {
  // Keeping only the three shallow '1' edges: with reduction they collapse
  // into the root class (inner joins), so no outer join is required.
  SourceDescription no_oj;
  no_oj.supports_outer_join = false;
  const uint64_t shallow_ones = 0b111;  // S1-S1.1, S1-S1.2, S1-S1.3
  EXPECT_TRUE(Permissible(shallow_ones, no_oj, /*reduce=*/true));
  // Without reduction the same edges produce separate classes joined by
  // outer joins.
  EXPECT_FALSE(Permissible(shallow_ones, no_oj, /*reduce=*/false));
}

TEST_F(SourceTest, BranchlessChainNeedsNoUnion) {
  // Paper: "plans with no branches (i.e., no sibling nodes) do not require
  // the union operator". Non-reduced chain S1-S1.4-S1.4.2: single-child
  // classes all the way down.
  SourceDescription no_union;
  no_union.supports_union = false;
  const uint64_t chain = (1u << 3) | (1u << 5);  // S1-S1.4, S1.4-S1.4.2
  EXPECT_TRUE(Permissible(chain, no_union, /*reduce=*/false));
  // The unified plan has sibling branches everywhere.
  EXPECT_FALSE(Permissible(511, no_union, /*reduce=*/false));
}

TEST_F(SourceTest, OuterUnionStyleOnlyNeedsUnion) {
  SourceDescription no_oj;
  no_oj.supports_outer_join = false;
  EXPECT_TRUE(
      Permissible(511, no_oj, /*reduce=*/true, SqlGenStyle::kOuterUnion));
  SourceDescription no_union;
  no_union.supports_union = false;
  EXPECT_FALSE(
      Permissible(511, no_union, /*reduce=*/true, SqlGenStyle::kOuterUnion));
}

TEST_F(SourceTest, MakePermissibleReturnsInputWhenAlreadyOk) {
  SourceDescription full;
  auto mask = MakePermissible(*tree_, 0x1E8, SqlGenStyle::kOuterJoin, true,
                              full);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(*mask, 0x1E8u);
}

TEST_F(SourceTest, MakePermissibleCutsToFullyPartitionedInTheLimit) {
  SourceDescription nothing;
  nothing.supports_outer_join = false;
  nothing.supports_union = false;
  auto mask = MakePermissible(*tree_, 511, SqlGenStyle::kOuterJoin,
                              /*reduce=*/false, nothing);
  ASSERT_TRUE(mask.ok());
  EXPECT_EQ(*mask, 0u);
}

TEST_F(SourceTest, MakePermissiblePreservesReducibleEdges) {
  // Without outer-join support but with reduction, '1' edges survive
  // because they collapse into classes.
  SourceDescription no_oj;
  no_oj.supports_outer_join = false;
  auto mask = MakePermissible(*tree_, 511, SqlGenStyle::kOuterJoin,
                              /*reduce=*/true, no_oj);
  ASSERT_TRUE(mask.ok());
  auto r = PlanPermissible(*tree_, *mask, SqlGenStyle::kOuterJoin, true,
                           no_oj);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  // The shallow '1' edges must still be kept.
  EXPECT_EQ(*mask & 0b111u, 0b111u);
  // The '*' edges must be cut.
  EXPECT_EQ(*mask & (1u << 3), 0u);  // S1-S1.4
  EXPECT_EQ(*mask & (1u << 5), 0u);  // S1.4-S1.4.2
}

TEST_F(SourceTest, PublisherHonorsSourceDescription) {
  Publisher publisher(db_);
  PublishOptions restricted;
  restricted.strategy = PlanStrategy::kUnified;
  restricted.source.supports_outer_join = false;
  restricted.source.supports_union = false;
  restricted.document_element = "suppliers";
  std::ostringstream restricted_out;
  auto result =
      publisher.Publish(Query1Rxl(), restricted, &restricted_out);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->metrics.num_streams, 1u);  // unified was cut down
  for (const auto& sql : result->metrics.sql) {
    EXPECT_EQ(sql.find("outer join"), std::string::npos);
    EXPECT_EQ(sql.find("union"), std::string::npos);
  }
  // Output identical to the unrestricted document.
  PublishOptions full;
  full.strategy = PlanStrategy::kUnified;
  full.document_element = "suppliers";
  std::ostringstream full_out;
  ASSERT_TRUE(publisher.Publish(Query1Rxl(), full, &full_out).ok());
  EXPECT_EQ(restricted_out.str(), full_out.str());
}

}  // namespace
}  // namespace silkroute::core
