// Tests for the component-query result cache and incremental view
// maintenance (DESIGN.md §15):
//
//  - ResultCache unit behaviour: hit/miss, structural invalidation through
//    version-vector keys, key-space separation, replace-in-place, byte
//    budget eviction, oversized-entry admission control;
//  - the Table version counter's unification with index maintenance: every
//    insert path (validated and unchecked) must keep the primary-key set,
//    secondary indexes, and the version counter in lockstep, because any
//    drift would silently serve stale cached documents;
//  - NormalizeSql pinning: the shared keying function used by both the
//    workload profile and the cache (a changed normalization would orphan
//    every profile entry and cache key in the wild);
//  - concurrent readers + writers over one cache (the TSan target);
//  - end to end: cache-on publishes byte-identical to cache-off at
//    concurrency 1 and 8, the unchanged-view republish served from the
//    document cache, a single-table delta re-executing ONLY the components
//    that name the dirty table, and a seeded differential harness that
//    randomly interleaves table mutations with republishes.
#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/string_util.h"
#include "engine/result_cache.h"
#include "obs/profile.h"
#include "relational/database.h"
#include "service/publishing_service.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute {
namespace {

// ---------------------------------------------------------------------------
// ResultCache unit behaviour
// ---------------------------------------------------------------------------

engine::CacheEntry MakeEntry(std::string payload, size_t num_tuples = 1) {
  engine::CacheEntry entry;
  entry.bytes = std::make_shared<const std::string>(std::move(payload));
  entry.num_tuples = num_tuples;
  return entry;
}

TEST(ResultCacheTest, HitMissAndVersionInvalidation) {
  engine::ResultCache cache(engine::ResultCache::Options{1 << 20, 2, nullptr});
  const std::string key_v3 =
      engine::ResultCache::FragmentKey("select a from T", {{"T", 3}});
  EXPECT_EQ(cache.Lookup(key_v3), nullptr);
  cache.Insert(key_v3, MakeEntry("payload", 7));

  auto hit = cache.Lookup(key_v3);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit->bytes, "payload");
  EXPECT_EQ(hit->num_tuples, 7u);

  // A bumped table version is a *different key*: the stale entry is simply
  // unreachable. No purge, nothing to coordinate with writers.
  const std::string key_v4 =
      engine::ResultCache::FragmentKey("select a from T", {{"T", 4}});
  EXPECT_EQ(cache.Lookup(key_v4), nullptr);

  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, FragmentAndDocumentKeySpacesAreDisjoint) {
  const engine::TableVersionVector versions = {{"T", 1}, {"U", 2}};
  EXPECT_NE(engine::ResultCache::FragmentKey("same text", versions),
            engine::ResultCache::DocumentKey("same text", versions));
  // The packed segments are self-delimiting: moving a version between the
  // text and the vector cannot produce the same key.
  EXPECT_NE(engine::ResultCache::FragmentKey("q", {{"T", 12}}),
            engine::ResultCache::FragmentKey("q", {{"T1", 2}}));
}

TEST(ResultCacheTest, ReinsertReplacesInPlace) {
  engine::ResultCache cache(engine::ResultCache::Options{1 << 20, 1, nullptr});
  const std::string key =
      engine::ResultCache::FragmentKey("select 1", {{"T", 1}});
  cache.Insert(key, MakeEntry("old"));
  cache.Insert(key, MakeEntry("new"));
  auto hit = cache.Lookup(key);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit->bytes, "new");
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(ResultCacheTest, EvictsColdEntriesUnderByteBudget) {
  // One shard so the whole budget is one LRU list. Each entry costs
  // key + payload + fixed overhead; a 4 KiB budget holds only a few
  // 512-byte payloads.
  engine::ResultCache cache(engine::ResultCache::Options{4096, 1, nullptr});
  std::vector<std::string> keys;
  for (int i = 0; i < 16; ++i) {
    keys.push_back(engine::ResultCache::FragmentKey(
        "q" + std::to_string(i), {{"T", static_cast<uint64_t>(i)}}));
    cache.Insert(keys.back(), MakeEntry(std::string(512, 'x')));
  }
  auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_LE(stats.resident_bytes, 4096u);
  EXPECT_EQ(stats.entries + stats.evictions, 16u);
  // The most recent insert survived; the oldest was evicted.
  EXPECT_NE(cache.Lookup(keys.back()), nullptr);
  EXPECT_EQ(cache.Lookup(keys.front()), nullptr);
}

TEST(ResultCacheTest, OversizedEntryIsRejectedAtAdmission) {
  engine::ResultCache cache(engine::ResultCache::Options{1024, 1, nullptr});
  const std::string key =
      engine::ResultCache::FragmentKey("big", {{"T", 1}});
  cache.Insert(key, MakeEntry(std::string(4096, 'x')));
  auto stats = cache.stats();
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(cache.Lookup(key), nullptr);
}

TEST(ResultCacheTest, ConcurrentReadersAndWritersAreSafe) {
  // The TSan target: readers, writers, and the stats scan all race over a
  // budget small enough to keep eviction churning. Entries are immutable
  // shared_ptrs, so a reader may outlive its entry's eviction.
  engine::ResultCache cache(engine::ResultCache::Options{64 << 10, 4,
                                                         nullptr});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      std::mt19937 rng(static_cast<unsigned>(1000 + t));
      for (int i = 0; i < 2000; ++i) {
        std::string sql = "q";
        sql += std::to_string(rng() % 64);
        const std::string key = engine::ResultCache::FragmentKey(
            sql, {{"T", static_cast<uint64_t>(rng() % 4)}});
        if (rng() % 2 == 0) {
          cache.Insert(key, MakeEntry(std::string(200 + rng() % 200, 'x')));
        } else if (auto entry = cache.Lookup(key)) {
          // Hold the borrowed bytes across the next eviction window.
          EXPECT_GE(entry->bytes->size(), 200u);
        }
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int i = 0; i < 200; ++i) {
      auto stats = cache.stats();
      EXPECT_LE(stats.resident_bytes, (64u << 10) + 1024u);
      cache.RecordSplices(1);
    }
  });
  for (auto& thread : threads) thread.join();
  auto stats = cache.stats();
  EXPECT_GT(stats.hits + stats.misses, 0u);
  EXPECT_EQ(stats.splices, 200u);
}

// ---------------------------------------------------------------------------
// Table versioning: one CommitRow path for every insert
// ---------------------------------------------------------------------------

TEST(TableVersionTest, EveryInsertPathMaintainsVersionKeysAndIndexes) {
  TableSchema schema("T", {{"k", DataType::kInt64, false},
                           {"v", DataType::kString, false}});
  ASSERT_TRUE(schema.SetPrimaryKey({"k"}).ok());
  Table table(schema);
  ASSERT_TRUE(table.CreateIndex("v").ok());
  EXPECT_EQ(table.version(), 0u);

  ASSERT_TRUE(table.Insert({Value::Int64(1), Value::String("a")}).ok());
  EXPECT_EQ(table.version(), 1u);
  // The unchecked (bulk-load) path goes through the same CommitRow: the
  // version bumps, the secondary index sees the row, and the primary-key
  // set records the key.
  table.InsertUnchecked({Value::Int64(2), Value::String("b")});
  EXPECT_EQ(table.version(), 2u);

  const Table::Index* index = table.GetIndex("v");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->count(Value::String("a")), 1u);
  EXPECT_EQ(index->count(Value::String("b")), 1u);

  // Duplicate of the *unchecked* row's key must still be caught by the
  // validated path — the regression that motivated unifying the paths.
  EXPECT_FALSE(table.Insert({Value::Int64(2), Value::String("c")}).ok());
  EXPECT_EQ(table.version(), 2u) << "a rejected insert must not bump";

  // Append-only store: the version doubles as the row high-water mark.
  EXPECT_EQ(table.RowsAppendedSince(0), 2u);
  EXPECT_EQ(table.RowsAppendedSince(1), 1u);
  EXPECT_EQ(table.RowsAppendedSince(2), 0u);
  EXPECT_EQ(table.RowsAppendedSince(99), 0u);
}

// ---------------------------------------------------------------------------
// NormalizeSql: the shared keying function
// ---------------------------------------------------------------------------

TEST(NormalizeSqlTest, PinsTheSharedKeyingNormalization) {
  // Both the workload profile and the result cache key on this exact
  // output; changing it silently orphans saved profiles and cached
  // entries, so the behaviour is pinned.
  EXPECT_EQ(NormalizeSql("SELECT a FROM T"), "SELECT a FROM T");
  EXPECT_EQ(NormalizeSql("  SELECT   a,\n\tb\nFROM  T  "),
            "SELECT a, b FROM T");
  EXPECT_EQ(NormalizeSql("\n\t "), "");
  EXPECT_EQ(NormalizeSql(""), "");
  // The obs:: alias is the same function, not a divergent copy.
  EXPECT_EQ(obs::NormalizeSql("a   b"), NormalizeSql("a   b"));
}

}  // namespace
}  // namespace silkroute

// ---------------------------------------------------------------------------
// End to end: publisher + service with a live cache
// ---------------------------------------------------------------------------

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

PublishOptions BaseOptions() {
  PublishOptions opt;
  // Fully partitioned = one query per view-tree node: the most components,
  // hence the sharpest dirty-table attribution.
  opt.strategy = PlanStrategy::kFullyPartitioned;
  opt.document_element = "suppliers";
  return opt;
}

std::string MustPublish(Publisher* publisher, const PublishOptions& opt,
                        PlanMetrics* metrics = nullptr) {
  std::ostringstream out;
  auto result = publisher->Publish(Query1Rxl(), opt, &out);
  EXPECT_TRUE(result.ok()) << result.status();
  if (result.ok() && metrics != nullptr) *metrics = result->metrics;
  return out.str();
}

TEST(ResultCacheE2ETest, CacheOnMatchesCacheOffAndRepublishDocHits) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());
  const std::string cold = MustPublish(&publisher, BaseOptions());

  engine::ResultCache cache(
      engine::ResultCache::Options{8 << 20, 4, nullptr});
  PublishOptions cached = BaseOptions();
  cached.result_cache = &cache;

  PlanMetrics first;
  EXPECT_EQ(MustPublish(&publisher, cached, &first), cold);
  EXPECT_FALSE(first.served_from_doc_cache);
  EXPECT_EQ(first.cache_hits, 0u);
  EXPECT_GT(first.cache_misses, 0u);

  PlanMetrics second;
  EXPECT_EQ(MustPublish(&publisher, cached, &second), cold);
  EXPECT_TRUE(second.served_from_doc_cache);
  EXPECT_EQ(second.xml_bytes, first.xml_bytes);
  EXPECT_EQ(second.rows, first.rows);
}

TEST(ResultCacheE2ETest, SingleTableDeltaReexecutesOnlyDirtyComponents) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());

  engine::ResultCache cache(
      engine::ResultCache::Options{8 << 20, 4, nullptr});
  PublishOptions cached = BaseOptions();
  cached.result_cache = &cache;

  PlanMetrics cold;
  MustPublish(&publisher, cached, &cold);
  const size_t total = cold.components.size();
  ASSERT_GT(total, 1u);

  // Dirty exactly one backend table (append a delta row), then count how
  // many components name it.
  const std::string victim = "Region";
  auto table = db->GetTable(victim);
  ASSERT_TRUE(table.ok());
  Tuple delta_row = (*table)->rows().front();
  (*table)->InsertUnchecked(std::move(delta_row));

  size_t dirty = 0;
  for (const auto& component : cold.components) {
    for (const auto& t : component.tables) {
      if (t == victim) {
        ++dirty;
        break;
      }
    }
  }
  ASSERT_GT(dirty, 0u);
  ASSERT_LT(dirty, total);

  PlanMetrics warm;
  const std::string incremental = MustPublish(&publisher, cached, &warm);
  EXPECT_FALSE(warm.served_from_doc_cache);
  // The incremental republish executed ONLY the components naming the
  // dirty table; everything else was a fragment hit spliced back in by
  // the tagger.
  EXPECT_EQ(warm.cache_misses, dirty);
  EXPECT_EQ(warm.cache_hits, total - dirty);
  EXPECT_EQ(warm.cache_splices, total - dirty);
  EXPECT_EQ(warm.exec_report.queries.size(), dirty);

  // Differential proof: byte-identical to an uncached publish over the
  // same mutated database.
  const std::string reference = MustPublish(&publisher, BaseOptions());
  EXPECT_EQ(incremental, reference);
  EXPECT_NE(incremental, "");
}

TEST(ResultCacheE2ETest, ServiceConcurrency8IsByteIdenticalColdAndWarm) {
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());
  const std::string cold = MustPublish(&publisher, BaseOptions());

  engine::ResultCache cache(
      engine::ResultCache::Options{8 << 20, 8, nullptr});
  service::ServiceOptions service_options;
  service_options.workers = 8;
  service_options.result_cache = &cache;
  service::PublishingService service(db.get(), service_options);

  for (int round = 0; round < 2; ++round) {
    std::vector<service::ServiceRequest> batch(8);
    for (auto& request : batch) {
      request.rxl = Query1Rxl();
      request.options = BaseOptions();
    }
    auto responses = service.PublishAll(std::move(batch));
    ASSERT_EQ(responses.size(), 8u);
    for (size_t i = 0; i < responses.size(); ++i) {
      ASSERT_TRUE(responses[i].status.ok())
          << "round " << round << " request " << i << ": "
          << responses[i].status;
      EXPECT_EQ(responses[i].xml, cold)
          << "round " << round << " request " << i;
    }
  }
  // The warm round (and stragglers of the cold one) must have been served
  // from cache.
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(ResultCacheE2ETest, DifferentialHarnessInterleavesMutationsAndPublishes) {
  // The randomized harness: republish through a warm cache while a seeded
  // writer appends delta rows to random tables between publishes. Every
  // iteration the cached document must be byte-identical to a fresh
  // uncached publish of the same database state.
  auto db = MakeTinyTpch(0.001);
  Publisher publisher(db.get());

  engine::ResultCache cache(
      engine::ResultCache::Options{8 << 20, 4, nullptr});
  PublishOptions cached = BaseOptions();
  cached.result_cache = &cache;

  std::vector<std::string> tables = db->catalog().TableNames();
  ASSERT_FALSE(tables.empty());
  std::mt19937 rng(0xC0FFEE);
  size_t mutations = 0;
  for (int i = 0; i < 40; ++i) {
    if (rng() % 2 == 0) {
      const std::string& victim = tables[rng() % tables.size()];
      auto table = db->GetTable(victim);
      ASSERT_TRUE(table.ok());
      if ((*table)->num_rows() > 0) {
        Tuple row = (*table)->rows()[rng() % (*table)->num_rows()];
        (*table)->InsertUnchecked(std::move(row));
        ++mutations;
      }
    }
    const std::string warm = MustPublish(&publisher, cached);
    const std::string reference = MustPublish(&publisher, BaseOptions());
    ASSERT_EQ(warm, reference) << "iteration " << i;
  }
  ASSERT_GT(mutations, 0u);
  auto stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.splices, 0u);
}

}  // namespace
}  // namespace silkroute::core
