// ReplicaSet unit tests: P2C routing spreads load, failing replicas get
// ejected and recover through jittered half-open probes (injected breaker
// clock), hedges fire after the tracked p95 and stay inside the hedge
// budget, the retry budget stops retry storms, hedged races are
// deterministic in content regardless of which replica answers first, and
// shutdown/ejection edge cases fail cleanly.
#include "net/replica_set.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/circuit_breaker.h"
#include "sql/ddl.h"
#include "tests/test_util.h"

namespace silkroute::net {
namespace {

// ---------------------------------------------------------------------------
// A scripted replica: configurable latency (cancellable), failure injection,
// call/cancellation counting. Wraps a real DatabaseExecutor so successful
// calls return real relations.

class ScriptedReplica : public engine::SqlExecutor {
 public:
  explicit ScriptedReplica(engine::SqlExecutor* inner) : inner_(inner) {}

  Result<engine::Relation> ExecuteSql(std::string_view sql) override {
    return ExecuteSqlCancellable(sql, 0, nullptr);
  }
  Result<engine::Relation> ExecuteSqlWithDeadline(std::string_view sql,
                                                  double timeout_ms) override {
    return ExecuteSqlCancellable(sql, timeout_ms, nullptr);
  }
  Result<engine::Relation> ExecuteSqlCancellable(std::string_view sql,
                                                 double timeout_ms,
                                                 CancelToken* cancel) override {
    calls.fetch_add(1);
    double ms = delay_ms.load();
    if (ms > 0) {
      if (cancel != nullptr) {
        if (!cancel->SleepFor(ms)) {
          cancellations.fetch_add(1);
          return Status::Unavailable("replica call cancelled");
        }
      } else {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(ms));
      }
    }
    StatusCode code = fail_with.load();
    if (code != StatusCode::kOk) {
      return Status(code, "injected replica failure");
    }
    return inner_->ExecuteSqlWithDeadline(sql, timeout_ms);
  }
  void set_timeout_ms(double) override {}

  std::atomic<int> calls{0};
  std::atomic<int> cancellations{0};
  std::atomic<double> delay_ms{0};
  std::atomic<StatusCode> fail_with{StatusCode::kOk};

 private:
  engine::SqlExecutor* inner_;
};

constexpr const char* kSql = "select suppkey from Supplier order by suppkey";

struct ReplicaFixture {
  std::unique_ptr<Database> db;
  engine::DatabaseExecutor inner;
  std::vector<std::unique_ptr<ScriptedReplica>> replicas;
  double now = 0;  // injected breaker clock

  explicit ReplicaFixture(size_t n = 3)
      : db(core::testutil::MakeTinyTpch(0.002)), inner(db.get()) {
    for (size_t i = 0; i < n; ++i) {
      replicas.push_back(std::make_unique<ScriptedReplica>(&inner));
    }
  }

  ReplicaSetOptions Options() {
    ReplicaSetOptions options;
    options.backend = "east";
    for (size_t i = 0; i < replicas.size(); ++i) {
      options.replicas.push_back(
          {"r" + std::to_string(i), replicas[i].get()});
    }
    options.breaker.failure_threshold = 2;
    options.breaker.open_ms = 100;
    options.breaker.now_ms = [this] { return now; };
    options.poll_interval_ms = 2;
    return options;
  }

  engine::Relation Reference() {
    auto reference = inner.ExecuteSql(kSql);
    EXPECT_TRUE(reference.ok()) << reference.status();
    return *reference;
  }
};

TEST(ReplicaSetTest, SpreadsLoadAcrossHealthyReplicas) {
  ReplicaFixture f(3);
  ReplicaSet set(f.Options());
  engine::Relation reference = f.Reference();
  for (int i = 0; i < 60; ++i) {
    auto result = set.ExecuteSql(kSql);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->rows, reference.rows);
  }
  EXPECT_EQ(set.requests(), 60u);
  // P2C with identical load ends up touching every replica.
  for (const auto& replica : f.replicas) {
    EXPECT_GT(replica->calls.load(), 0) << "a replica never saw traffic";
  }
  EXPECT_EQ(set.ejections(), 0u);
}

TEST(ReplicaSetTest, EjectsFailingReplicaThenRecoversViaProbe) {
  ReplicaFixture f(3);
  auto options = f.Options();
  // This test is about ejection/recovery, not budgets: give retries ample
  // headroom so every failed primary attempt can fail over.
  options.retry_budget_ratio = 1.0;
  options.retry_budget_cap = 100;
  ReplicaSet set(std::move(options));
  f.replicas[0]->fail_with.store(StatusCode::kUnavailable);

  // Every call still succeeds (replica failover); replica 0 accumulates
  // failures until its breaker trips.
  for (int i = 0; i < 40; ++i) {
    auto result = set.ExecuteSql(kSql);
    ASSERT_TRUE(result.ok()) << result.status();
  }
  EXPECT_GE(set.ejections(), 1u);
  EXPECT_EQ(set.replica_stats(0).state, service::BreakerState::kOpen);
  EXPECT_TRUE(set.Healthy());  // two replicas remain admittable

  // While ejected, replica 0 sees no traffic.
  int ejected_calls = f.replicas[0]->calls.load();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(set.ExecuteSql(kSql).ok());
  }
  EXPECT_EQ(f.replicas[0]->calls.load(), ejected_calls);

  // Heal and advance past the cool-down (open_ms + worst-case jitter =
  // open_ms/2): the next calls admit a probe, the probe succeeds, and the
  // replica rejoins the rotation.
  f.replicas[0]->fail_with.store(StatusCode::kOk);
  f.now += 100 + 50 + 1;
  for (int i = 0; i < 40 && f.replicas[0]->calls.load() == ejected_calls;
       ++i) {
    ASSERT_TRUE(set.ExecuteSql(kSql).ok());
  }
  EXPECT_GT(f.replicas[0]->calls.load(), ejected_calls);
  EXPECT_EQ(set.replica_stats(0).state, service::BreakerState::kClosed);
}

TEST(ReplicaSetTest, HedgeRescuesSlowPrimaryWithinBudget) {
  ReplicaFixture f(2);
  auto options = f.Options();
  options.hedge_initial_delay_ms = 10;
  options.hedge_warmup = 10000;  // pin the delay to the initial value
  options.hedge_budget_ratio = 1.0;  // this test is about firing, not caps
  options.hedge_budget_cap = 100;
  ReplicaSet set(std::move(options));
  engine::Relation reference = f.Reference();

  // Replica 0 stalls far past the hedge delay; replica 1 is instant. Every
  // call where 0 is primary must be rescued by a hedge to 1, and the
  // stalled loser must be cancelled promptly (not waited out).
  f.replicas[0]->delay_ms.store(2000);
  auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < 20; ++i) {
    auto result = set.ExecuteSql(kSql);
    ASSERT_TRUE(result.ok()) << result.status();
    ASSERT_EQ(result->rows, reference.rows);
  }
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_LT(elapsed_ms, 10000) << "losers were waited out, not cancelled";
  EXPECT_GT(set.hedges_fired(), 0u);
  EXPECT_GT(set.hedges_won(), 0u);
  EXPECT_GT(set.hedges_cancelled(), 0u);
  EXPECT_GT(f.replicas[0]->cancellations.load(), 0);
}

TEST(ReplicaSetTest, HedgeBudgetCapsHedgeTraffic) {
  ReplicaFixture f(3);
  auto options = f.Options();
  options.hedge_initial_delay_ms = 5;
  options.hedge_warmup = 10000;
  options.hedge_budget_ratio = 0.05;
  options.hedge_budget_cap = 2;
  ReplicaSet set(std::move(options));

  // Every replica is slow enough that every call *wants* a hedge; the
  // budget must hold hedges to ratio * requests + cap regardless.
  for (auto& replica : f.replicas) replica->delay_ms.store(20);
  const int kRequests = 100;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(set.ExecuteSql(kSql).ok());
  }
  EXPECT_LE(set.hedges_fired(),
            static_cast<uint64_t>(0.05 * kRequests) + 2);
  EXPECT_GT(set.hedges_suppressed(), 0u);
}

TEST(ReplicaSetTest, RetryBudgetStopsRetryStorms) {
  ReplicaFixture f(3);
  auto options = f.Options();
  options.breaker.failure_threshold = 1000;  // isolate the budget, no ejection
  options.hedging = false;
  options.retry_budget_ratio = 0.1;
  options.retry_budget_cap = 1;
  ReplicaSet set(std::move(options));
  for (auto& replica : f.replicas) {
    replica->fail_with.store(StatusCode::kUnavailable);
  }

  const int kRequests = 50;
  for (int i = 0; i < kRequests; ++i) {
    auto result = set.ExecuteSql(kSql);
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  }
  // Without the budget this would be kRequests * (max_attempts - 1)
  // retries; with it, at most ratio * requests + cap.
  EXPECT_LE(set.retries(), static_cast<uint64_t>(0.1 * kRequests) + 1);
  EXPECT_GT(set.retry_budget_exhausted(), 0u);
  int total_calls = 0;
  for (auto& replica : f.replicas) total_calls += replica->calls.load();
  EXPECT_LE(total_calls, kRequests + static_cast<int>(set.retries()));
}

TEST(ReplicaSetTest, HedgedRaceIsDeterministicInContent) {
  // Satellite: whichever side of a hedged race answers first, the returned
  // relation is identical — the race decides *latency*, never *content*.
  // Roles alternate so both primary-wins and hedge-wins occur.
  ReplicaFixture f(2);
  auto options = f.Options();
  options.hedge_initial_delay_ms = 5;
  options.hedge_warmup = 10000;
  options.hedge_budget_ratio = 1.0;
  options.hedge_budget_cap = 1000;
  options.seed = 0xD1CE5EED;
  ReplicaSet set(std::move(options));
  engine::Relation reference = f.Reference();

  const int kTrials = 40;
  for (int trial = 0; trial < kTrials; ++trial) {
    f.replicas[trial % 2]->delay_ms.store(40);
    f.replicas[(trial + 1) % 2]->delay_ms.store(0);
    auto result = set.ExecuteSql(kSql);
    ASSERT_TRUE(result.ok()) << "trial " << trial << ": " << result.status();
    ASSERT_EQ(result->rows, reference.rows) << "trial " << trial;
  }
  // Both outcomes actually happened: some races were won by the hedge,
  // some by the primary.
  EXPECT_GT(set.hedges_won(), 0u);
  EXPECT_LT(set.hedges_won(), static_cast<uint64_t>(kTrials));
}

TEST(ReplicaSetTest, AllReplicasEjectedFailsCleanAndRecovers) {
  ReplicaFixture f(2);
  auto options = f.Options();
  options.hedging = false;
  options.retry_budget_ratio = 1.0;
  options.retry_budget_cap = 100;
  ReplicaSet set(std::move(options));
  for (auto& replica : f.replicas) {
    replica->fail_with.store(StatusCode::kUnavailable);
  }

  // Drive both breakers open.
  for (int i = 0; i < 10; ++i) (void)set.ExecuteSql(kSql);
  ASSERT_EQ(set.replica_stats(0).state, service::BreakerState::kOpen);
  ASSERT_EQ(set.replica_stats(1).state, service::BreakerState::kOpen);
  EXPECT_FALSE(set.Healthy());

  // Fully ejected: calls fail fast without touching any replica.
  int calls_before =
      f.replicas[0]->calls.load() + f.replicas[1]->calls.load();
  auto result = set.ExecuteSql(kSql);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(f.replicas[0]->calls.load() + f.replicas[1]->calls.load(),
            calls_before);

  // Cool-down elapses: Healthy() flips back on its own (this is what lets
  // a router resume sending probe traffic), and a healed replica closes.
  for (auto& replica : f.replicas) replica->fail_with.store(StatusCode::kOk);
  f.now += 100 + 50 + 1;
  EXPECT_TRUE(set.Healthy());
  auto recovered = set.ExecuteSql(kSql);
  ASSERT_TRUE(recovered.ok()) << recovered.status();
}

TEST(ReplicaSetTest, NonSourceErrorReturnsImmediatelyWithoutFailover) {
  ReplicaFixture f(3);
  auto options = f.Options();
  options.hedging = false;
  ReplicaSet set(std::move(options));
  for (auto& replica : f.replicas) {
    replica->fail_with.store(StatusCode::kInternal);
  }
  auto result = set.ExecuteSql(kSql);
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_EQ(set.retries(), 0u);
  EXPECT_EQ(set.ejections(), 0u);
  int total_calls = 0;
  for (auto& replica : f.replicas) total_calls += replica->calls.load();
  EXPECT_EQ(total_calls, 1);  // deterministic errors never fan out
}

TEST(ReplicaSetTest, ShutdownUnblocksInFlightCalls) {
  ReplicaFixture f(2);
  auto options = f.Options();
  options.hedging = false;
  ReplicaSet set(std::move(options));
  for (auto& replica : f.replicas) replica->delay_ms.store(30000);

  std::atomic<bool> returned{false};
  Status status = Status::OK();
  std::thread caller([&] {
    auto result = set.ExecuteSql(kSql);
    status = result.status();
    returned.store(true);
  });
  // Give the call time to get in flight, then pull the plug.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto t0 = std::chrono::steady_clock::now();
  set.Shutdown();
  caller.join();
  double unblock_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(status.ok());
  EXPECT_LT(unblock_ms, 5000) << "shutdown did not unblock the call";

  auto after = set.ExecuteSql(kSql);
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

TEST(ReplicaSetTest, DeadlineProducesCleanTimeout) {
  ReplicaFixture f(2);
  auto options = f.Options();
  options.hedging = false;
  ReplicaSet set(std::move(options));
  for (auto& replica : f.replicas) replica->delay_ms.store(10000);
  auto t0 = std::chrono::steady_clock::now();
  auto result = set.ExecuteSqlWithDeadline(kSql, 50);
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
  EXPECT_LT(elapsed_ms, 5000);
}

TEST(ReplicaSetTest, HedgeDelayTracksObservedLatencies) {
  ReplicaFixture f(2);
  auto options = f.Options();
  options.hedge_initial_delay_ms = 123;
  options.hedge_warmup = 4;
  options.hedge_min_delay_ms = 1;
  options.hedge_max_delay_ms = 1000;
  options.hedging = false;  // sample collection only, no races
  ReplicaSet set(std::move(options));

  EXPECT_DOUBLE_EQ(set.CurrentHedgeDelayMs(), 123);  // cold: initial delay
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(set.ExecuteSql(kSql).ok());
  }
  // Warmed up: the delay now reflects the (fast) observed p95, clamped to
  // the configured floor — far below the initial guess.
  EXPECT_LT(set.CurrentHedgeDelayMs(), 123);
  EXPECT_GE(set.CurrentHedgeDelayMs(), 1);
}

}  // namespace
}  // namespace silkroute::net
