#include "silkroute/partition.h"

#include <gtest/gtest.h>

#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;
using testutil::MustBuildTree;
using testutil::NodeByName;

class PartitionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTinyTpch().release();
    tree_ = new ViewTree(MustBuildTree(Query1Rxl(), db_->catalog()));
  }
  static void TearDownTestSuite() {
    delete tree_;
    delete db_;
    tree_ = nullptr;
    db_ = nullptr;
  }
  static Database* db_;
  static ViewTree* tree_;
};

Database* PartitionTest::db_ = nullptr;
ViewTree* PartitionTest::tree_ = nullptr;

TEST_F(PartitionTest, NumPlansIsTwoToTheEdges) {
  auto n = NumPlans(*tree_);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 512u);  // paper Sec. 2: 2^9 plans
}

TEST_F(PartitionTest, FullyPartitionedHasOneStreamPerNode) {
  Partition p = Partition::FullyPartitioned(*tree_);
  EXPECT_EQ(p.num_streams(), tree_->num_nodes());
  for (const auto& c : p.components()) {
    EXPECT_EQ(c.nodes.size(), 1u);
    EXPECT_EQ(c.root, c.nodes[0]);
  }
}

TEST_F(PartitionTest, UnifiedHasOneStream) {
  Partition p = Partition::Unified(*tree_);
  ASSERT_EQ(p.num_streams(), 1u);
  EXPECT_EQ(p.components()[0].nodes.size(), tree_->num_nodes());
  EXPECT_EQ(p.components()[0].root, 0);
}

TEST_F(PartitionTest, MaskOutOfRangeRejected) {
  EXPECT_FALSE(Partition::FromMask(*tree_, uint64_t{1} << 9).ok());
}

TEST_F(PartitionTest, SingleEdgeMerges) {
  // Keep only the first edge (S1 - S1.1).
  auto p = Partition::FromMask(*tree_, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->num_streams(), tree_->num_nodes() - 1);
  EXPECT_TRUE(p->EdgeKept(0));
  EXPECT_FALSE(p->EdgeKept(1));
  EXPECT_EQ(p->components()[0].nodes.size(), 2u);
}

TEST_F(PartitionTest, StreamCountEqualsNodesMinusKeptEdges) {
  // Spanning-forest property: components = nodes - kept edges.
  for (uint64_t mask = 0; mask < 512; mask += 7) {
    auto p = Partition::FromMask(*tree_, mask);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->num_streams(),
              tree_->num_nodes() - static_cast<size_t>(__builtin_popcountll(mask)))
        << mask;
  }
}

TEST_F(PartitionTest, ComponentsContainParentsOfMembers) {
  // Every non-root member's parent is also a member (connected subtree).
  for (uint64_t mask : {uint64_t{0x1E8}, uint64_t{0x21}, uint64_t{0x1FF}}) {
    auto p = Partition::FromMask(*tree_, mask);
    ASSERT_TRUE(p.ok());
    for (const auto& c : p->components()) {
      for (int id : c.nodes) {
        if (id == c.root) continue;
        int parent = tree_->node(id).parent;
        bool parent_in =
            std::find(c.nodes.begin(), c.nodes.end(), parent) != c.nodes.end();
        bool edge_kept = false;
        auto edges = tree_->Edges();
        for (size_t e = 0; e < edges.size(); ++e) {
          if (edges[e].second == id && p->EdgeKept(e)) edge_kept = true;
        }
        EXPECT_EQ(parent_in, edge_kept);
      }
    }
  }
}

TEST_F(PartitionTest, ToStringListsAllComponents) {
  Partition p = Partition::FullyPartitioned(*tree_);
  std::string s = p.ToString();
  EXPECT_NE(s.find("{S1}"), std::string::npos);
  EXPECT_NE(s.find("{S1.4.2.3}"), std::string::npos);
}

TEST_F(PartitionTest, ExecClassesWithoutReductionAreSingletons) {
  Partition p = Partition::Unified(*tree_);
  auto exec = BuildExecComponent(*tree_, p.components()[0], /*reduce=*/false);
  ASSERT_TRUE(exec.ok());
  EXPECT_EQ(exec->nodes.size(), tree_->num_nodes());
  for (const auto& cls : exec->nodes) {
    EXPECT_EQ(cls.covered.size(), 1u);
  }
}

TEST_F(PartitionTest, ReductionCollapsesOneEdgesUnified) {
  // Query 1 unified + reduction: classes {S1,S1.1,S1.2,S1.3},
  // {S1.4,S1.4.1}, {S1.4.2,S1.4.2.1,S1.4.2.2,S1.4.2.3} — the Fig. 11
  // pattern.
  Partition p = Partition::Unified(*tree_);
  auto exec = BuildExecComponent(*tree_, p.components()[0], /*reduce=*/true);
  ASSERT_TRUE(exec.ok());
  ASSERT_EQ(exec->nodes.size(), 3u);
  EXPECT_EQ(exec->nodes[0].covered.size(), 4u);
  EXPECT_EQ(exec->nodes[0].head, 0);
  EXPECT_EQ(exec->nodes[1].covered.size(), 2u);
  EXPECT_EQ(exec->nodes[1].head, NodeByName(*tree_, "S1.4"));
  EXPECT_EQ(exec->nodes[2].covered.size(), 4u);
  EXPECT_EQ(exec->nodes[2].head, NodeByName(*tree_, "S1.4.2"));
  // Class tree: part-class under supplier-class, order-class under part.
  EXPECT_EQ(exec->nodes[0].parent, -1);
  EXPECT_EQ(exec->nodes[1].parent, 0);
  EXPECT_EQ(exec->nodes[2].parent, 1);
  EXPECT_EQ(exec->nodes[0].children, (std::vector<int>{1}));
}

TEST_F(PartitionTest, ReductionOnlyCollapsesKeptEdges) {
  // Cut the S1-S1.1 edge (edge 0): S1.1 is its own component and the root
  // class covers only {S1, S1.2, S1.3}.
  uint64_t all = (uint64_t{1} << 9) - 1;
  auto p = Partition::FromMask(*tree_, all & ~uint64_t{1});
  ASSERT_TRUE(p.ok());
  ASSERT_EQ(p->num_streams(), 2u);
  auto exec0 = BuildExecComponent(*tree_, p->components()[0], true);
  ASSERT_TRUE(exec0.ok());
  EXPECT_EQ(exec0->nodes[0].covered.size(), 3u);
  auto exec1 = BuildExecComponent(*tree_, p->components()[1], true);
  ASSERT_TRUE(exec1.ok());
  EXPECT_EQ(exec1->nodes.size(), 1u);  // the lone name node
}

TEST_F(PartitionTest, StarEdgesNeverCollapse) {
  Partition p = Partition::Unified(*tree_);
  auto exec = BuildExecComponent(*tree_, p.components()[0], true);
  ASSERT_TRUE(exec.ok());
  int part = NodeByName(*tree_, "S1.4");
  int order = NodeByName(*tree_, "S1.4.2");
  for (const auto& cls : exec->nodes) {
    bool has_supplier =
        std::find(cls.covered.begin(), cls.covered.end(), 0) != cls.covered.end();
    bool has_part =
        std::find(cls.covered.begin(), cls.covered.end(), part) != cls.covered.end();
    bool has_order =
        std::find(cls.covered.begin(), cls.covered.end(), order) != cls.covered.end();
    EXPECT_LE(has_supplier + has_part + has_order, 1);
  }
}

}  // namespace
}  // namespace silkroute::core
