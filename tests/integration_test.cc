// End-to-end tests of the Publisher pipeline: every plan of the plan space
// must produce the same DTD-valid document, across both SQL-generation
// styles, with and without view-tree reduction — the core correctness
// claim behind the paper's plan-space exploration.
#include <gtest/gtest.h>

#include <sstream>

#include "silkroute/partition.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"
#include "xml/dtd.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

class PublisherEnv {
 public:
  PublisherEnv() : db_(MakeTinyTpch(0.001)), publisher_(db_.get()) {}

  Publisher& publisher() { return publisher_; }
  Database& db() { return *db_; }

 private:
  std::unique_ptr<Database> db_;
  Publisher publisher_;
};

PublisherEnv* env() {
  static PublisherEnv* instance = new PublisherEnv();
  return instance;
}

std::string Reference(const char* rxl) {
  PublishOptions opt;
  opt.strategy = PlanStrategy::kFullyPartitioned;
  opt.document_element = "suppliers";
  std::ostringstream out;
  auto result = env()->publisher().Publish(rxl, opt, &out);
  EXPECT_TRUE(result.ok()) << result.status();
  return out.str();
}

// ---------------------------------------------------------------------------
// Parameterized sweep: every plan mask x style x reduction for Query 1.
// ---------------------------------------------------------------------------

struct SweepParam {
  uint64_t mask;
  SqlGenStyle style;
  bool reduce;
};

class PlanSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PlanSweepTest, ProducesReferenceDocument) {
  const SweepParam& param = GetParam();
  auto tree = env()->publisher().BuildViewTree(Query1Rxl());
  ASSERT_TRUE(tree.ok()) << tree.status();
  PublishOptions opt;
  opt.style = param.style;
  opt.reduce = param.reduce;
  opt.document_element = "suppliers";
  std::ostringstream out;
  auto metrics = env()->publisher().ExecutePlan(*tree, param.mask, opt, &out);
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_EQ(metrics->tagger.forced_ancestor_opens, 0u);
  static const std::string* const reference =
      new std::string(Reference(Query1Rxl().data()));
  EXPECT_EQ(out.str(), *reference) << "mask=" << param.mask;
}

std::vector<SweepParam> SweepParams() {
  std::vector<SweepParam> params;
  // A stratified sample of the 512 masks (all stream counts represented)
  // plus the canonical plans, crossed with style and reduction.
  std::vector<uint64_t> masks = {0,   1,   2,    4,    8,    16,  32,
                                 64,  128, 256,  3,    21,   73,  85,
                                 170, 255, 0x1E8, 311,  438,  511};
  for (uint64_t mask : masks) {
    for (auto style : {SqlGenStyle::kOuterJoin, SqlGenStyle::kOuterUnion}) {
      for (bool reduce : {false, true}) {
        params.push_back({mask, style, reduce});
      }
    }
  }
  return params;
}

INSTANTIATE_TEST_SUITE_P(AllPlans, PlanSweepTest,
                         ::testing::ValuesIn(SweepParams()),
                         [](const ::testing::TestParamInfo<SweepParam>& info) {
                           return "mask" + std::to_string(info.param.mask) +
                                  (info.param.style == SqlGenStyle::kOuterJoin
                                       ? "_oj"
                                       : "_ou") +
                                  (info.param.reduce ? "_red" : "_nored");
                         });

// ---------------------------------------------------------------------------
// Document-level checks.
// ---------------------------------------------------------------------------

TEST(PublisherTest, Query1DocumentValidatesAgainstPaperDtd) {
  std::string xml = Reference(Query1Rxl().data());
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto dtd = xml::ParseDtd(SuppliersDocumentDtd());
  ASSERT_TRUE(dtd.ok()) << dtd.status();
  Status valid = dtd->Validate(**doc);
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST(PublisherTest, Query2AllStrategiesAgree) {
  std::string reference;
  for (PlanStrategy strategy :
       {PlanStrategy::kFullyPartitioned, PlanStrategy::kUnified,
        PlanStrategy::kGreedy}) {
    PublishOptions opt;
    opt.strategy = strategy;
    opt.document_element = "suppliers";
    std::ostringstream out;
    auto result = env()->publisher().Publish(Query2Rxl(), opt, &out);
    ASSERT_TRUE(result.ok()) << result.status();
    if (reference.empty()) {
      reference = out.str();
    } else {
      EXPECT_EQ(out.str(), reference);
    }
  }
}

TEST(PublisherTest, GreedyStrategyReportsPlan) {
  PublishOptions opt;
  opt.strategy = PlanStrategy::kGreedy;
  opt.document_element = "suppliers";
  std::ostringstream out;
  auto result = env()->publisher().Publish(Query1Rxl(), opt, &out);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->greedy_plan.mandatory_edges.size() +
                result->greedy_plan.optional_edges.size(),
            0u);
  EXPECT_GT(result->greedy_plan.oracle_requests, 0u);
  EXPECT_EQ(result->metrics.mask, result->greedy_plan.FullMask());
}

TEST(PublisherTest, MetricsAreConsistent) {
  PublishOptions opt;
  opt.strategy = PlanStrategy::kExplicitMask;
  opt.explicit_mask = 0x1E8;
  opt.document_element = "suppliers";
  std::ostringstream out;
  auto result = env()->publisher().Publish(Query1Rxl(), opt, &out);
  ASSERT_TRUE(result.ok()) << result.status();
  const PlanMetrics& m = result->metrics;
  EXPECT_EQ(m.num_streams, 5u);
  EXPECT_EQ(m.sql.size(), 5u);
  EXPECT_GT(m.rows, 0u);
  EXPECT_GT(m.wire_bytes, 0u);
  EXPECT_EQ(m.xml_bytes, out.str().size());
  EXPECT_GE(m.total_ms(), m.query_ms);
}

TEST(PublisherTest, FragmentQueryMatchesFig4) {
  auto tree = env()->publisher().BuildViewTree(QueryFragmentRxl());
  ASSERT_TRUE(tree.ok()) << tree.status();
  EXPECT_EQ(tree->num_nodes(), 3u);  // supplier, nation, part
  EXPECT_EQ(tree->num_edges(), 2u);  // Fig. 5: 4 possible plans
  auto plans = NumPlans(*tree);
  ASSERT_TRUE(plans.ok());
  EXPECT_EQ(*plans, 4u);
}

TEST(PublisherTest, FragmentAllFourPlansAgree) {
  auto tree = env()->publisher().BuildViewTree(QueryFragmentRxl());
  ASSERT_TRUE(tree.ok());
  std::string reference;
  for (uint64_t mask = 0; mask < 4; ++mask) {
    PublishOptions opt;
    opt.document_element = "suppliers";
    std::ostringstream out;
    auto metrics = env()->publisher().ExecutePlan(*tree, mask, opt, &out);
    ASSERT_TRUE(metrics.ok()) << metrics.status();
    if (mask == 0) {
      reference = out.str();
    } else {
      EXPECT_EQ(out.str(), reference) << mask;
    }
  }
}

TEST(PublisherTest, SuppliersWithoutPartsAppearInDocument) {
  // The left-outer-join requirement of the paper's Sec. 2: suppliers with
  // no parts must still appear.
  std::string xml = Reference(Query1Rxl().data());
  auto doc = xml::ParseXml(xml);
  ASSERT_TRUE(doc.ok());
  size_t without_parts = 0;
  for (const auto* s : (*doc)->Children("supplier")) {
    if (s->Children("part").empty()) ++without_parts;
  }
  EXPECT_GT(without_parts, 0u);
}

TEST(PublisherTest, ExplicitSkolemGroupsElements) {
  // Group parts by their supplier's nation: explicit Skolem terms control
  // fusion, so each nation element appears once per nation, not per
  // supplier.
  const char* rxl = R"(
    from Nation $n construct
    <nationParts ID=NP($n.nationkey)>
      <nation>$n.name</nation>
      { from Supplier $s, PartSupp $ps, Part $p
        where $s.nationkey = $n.nationkey, $s.suppkey = $ps.suppkey,
              $ps.partkey = $p.partkey
        construct <part ID=PP($n.nationkey, $p.partkey)>$p.name</part> }
    </nationParts>
  )";
  PublishOptions opt;
  opt.document_element = "doc";
  std::ostringstream out;
  auto result = env()->publisher().Publish(rxl, opt, &out);
  ASSERT_TRUE(result.ok()) << result.status();
  auto doc = xml::ParseXml(out.str());
  ASSERT_TRUE(doc.ok()) << doc.status();
  auto nations = (*doc)->Children("nationParts");
  EXPECT_EQ(nations.size(), 25u);
}

TEST(PublisherTest, PrettyOutputStillParses) {
  PublishOptions opt;
  opt.pretty = true;
  opt.document_element = "suppliers";
  std::ostringstream out;
  auto result = env()->publisher().Publish(Query1Rxl(), opt, &out);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_NE(out.str().find('\n'), std::string::npos);
  EXPECT_TRUE(xml::ParseXml(out.str()).ok());
}

TEST(PublisherTest, InvalidRxlSurfacesParseError) {
  PublishOptions opt;
  std::ostringstream out;
  auto result = env()->publisher().Publish("from construct", opt, &out);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace silkroute::core
