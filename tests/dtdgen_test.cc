#include "silkroute/dtdgen.h"

#include <gtest/gtest.h>

#include <sstream>

#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"
#include "xml/reader.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;
using testutil::MustBuildTree;

class DtdGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { db_ = MakeTinyTpch(0.002).release(); }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }
  static Database* db_;
};

Database* DtdGenTest::db_ = nullptr;

TEST_F(DtdGenTest, Query1DtdMatchesPaperFig2) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  auto text = GenerateDtdText(tree, "");
  ASSERT_TRUE(text.ok()) << text.status();
  // The paper's Fig. 2 content models, derived automatically from the
  // multiplicity labels.
  EXPECT_NE(text->find("<!ELEMENT supplier (name, nation, region, part*)>"),
            std::string::npos)
      << *text;
  EXPECT_NE(text->find("<!ELEMENT part (name, order*)>"), std::string::npos);
  EXPECT_NE(text->find("<!ELEMENT order (orderkey, customer, nation)>"),
            std::string::npos);
  EXPECT_NE(text->find("<!ELEMENT name (#PCDATA)>"), std::string::npos);
  EXPECT_NE(text->find("<!ELEMENT nation (#PCDATA)>"), std::string::npos);
}

TEST_F(DtdGenTest, WrapperElementDeclared) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  auto text = GenerateDtdText(tree, "suppliers");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("<!ELEMENT suppliers (supplier*)>"),
            std::string::npos);
}

TEST_F(DtdGenTest, WrapperCollisionRejected) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  EXPECT_EQ(GenerateDtd(tree, "supplier").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(DtdGenTest, PublishedDocumentValidatesAgainstDerivedDtd) {
  ViewTree tree = MustBuildTree(Query1Rxl(), db_->catalog());
  auto dtd = GenerateDtd(tree, "suppliers");
  ASSERT_TRUE(dtd.ok()) << dtd.status();

  Publisher publisher(db_);
  PublishOptions options;
  options.document_element = "suppliers";
  std::ostringstream out;
  ASSERT_TRUE(publisher.Publish(Query1Rxl(), options, &out).ok());
  auto doc = xml::ParseXml(out.str());
  ASSERT_TRUE(doc.ok());
  Status valid = dtd->Validate(**doc);
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST_F(DtdGenTest, OptionalChildRendersQuestionMark) {
  // A literally-filtered FK child labels '?'.
  ViewTree tree = MustBuildTree(R"(
    from Supplier $s construct
    <supplier>
      { from Nation $n
        where $s.nationkey = $n.nationkey, $n.name = 'FRANCE'
        construct <nation>$n.name</nation> }
    </supplier>
  )",
                                db_->catalog());
  auto text = GenerateDtdText(tree, "");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("<!ELEMENT supplier (nation?)>"), std::string::npos)
      << *text;
}

TEST_F(DtdGenTest, MixedContentForTextPlusChildren) {
  ViewTree tree = MustBuildTree(R"(
    from Nation $n construct
    <nation>
      $n.name
      { from Region $r where $n.regionkey = $r.regionkey
        construct <region>$r.name</region> }
    </nation>
  )",
                                db_->catalog());
  auto text = GenerateDtdText(tree, "");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("<!ELEMENT nation (#PCDATA | region)*>"),
            std::string::npos)
      << *text;
}

TEST_F(DtdGenTest, EmptyElementDeclaredEmpty) {
  ViewTree tree = MustBuildTree(
      "from Region $r construct <region><marker/></region>",
      db_->catalog());
  auto text = GenerateDtdText(tree, "");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("<!ELEMENT marker EMPTY>"), std::string::npos);
}

TEST_F(DtdGenTest, ConflictingTagUsesWidenToAny) {
  // <name> used once as PCDATA and once with element content.
  ViewTree tree = MustBuildTree(R"(
    from Supplier $s construct
    <supplier>
      <name>$s.name</name>
      { from Nation $n where $s.nationkey = $n.nationkey
        construct <info><name><inner>$n.name</inner></name></info> }
    </supplier>
  )",
                                db_->catalog());
  auto text = GenerateDtdText(tree, "");
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("<!ELEMENT name ANY>"), std::string::npos) << *text;
}

TEST_F(DtdGenTest, GeneratedTextReparses) {
  ViewTree tree = MustBuildTree(Query2Rxl(), db_->catalog());
  auto text = GenerateDtdText(tree, "suppliers");
  ASSERT_TRUE(text.ok());
  auto reparsed = xml::ParseDtd(*text);
  ASSERT_TRUE(reparsed.ok()) << *text << "\n" << reparsed.status();
  EXPECT_TRUE(reparsed->HasElement("supplier"));
}

}  // namespace
}  // namespace silkroute::core
