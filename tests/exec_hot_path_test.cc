// Regression tests for the packed-key execution hot paths: disjunctive
// join output order (the normalization pass DisjunctiveHashJoin must keep),
// projection fusion vs. the materializing path, borrowed base-table scans,
// and the word-packed / general ORDER BY sort key paths. These pin the
// *observable stream order* the tagger depends on, not just row sets.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "sql/parser.h"

namespace silkroute::engine {
namespace {

class ExecHotPathTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableSchema supplier("Supplier", {{"suppkey", DataType::kInt64, false},
                                      {"name", DataType::kString, false},
                                      {"nationkey", DataType::kInt64, false}});
    ASSERT_TRUE(supplier.SetPrimaryKey({"suppkey"}).ok());
    ASSERT_TRUE(db_.CreateTable(supplier).ok());
    TableSchema part("Part", {{"partkey", DataType::kInt64, false},
                              {"suppkey", DataType::kInt64, false},
                              {"pname", DataType::kString, false}});
    ASSERT_TRUE(part.SetPrimaryKey({"partkey"}).ok());
    ASSERT_TRUE(db_.CreateTable(part).ok());

    Insert("Supplier", {Value::Int64(1), Value::String("s1"), Value::Int64(10)});
    Insert("Supplier", {Value::Int64(2), Value::String("s2"), Value::Int64(11)});
    Insert("Supplier", {Value::Int64(3), Value::String("s3"), Value::Int64(10)});
    Insert("Part", {Value::Int64(100), Value::Int64(1), Value::String("brass")});
    Insert("Part", {Value::Int64(101), Value::Int64(1), Value::String("steel")});
    Insert("Part", {Value::Int64(102), Value::Int64(2), Value::String("nickel")});
  }

  void Insert(const std::string& table, Tuple row) {
    ASSERT_TRUE(db_.Insert(table, std::move(row)).ok());
  }

  Relation Run(const std::string& sql) {
    QueryExecutor exec(&db_);
    auto result = exec.ExecuteSql(sql);
    EXPECT_TRUE(result.ok()) << sql << "\n" << result.status();
    last_stats_ = exec.stats();
    return result.ok() ? std::move(result).value() : Relation{};
  }

  Database db_;
  ExecStats last_stats_;
};

// Pins the output order the comment in DisjunctiveHashJoin promises: per
// left row, matched right rows appear exactly once each, in ascending
// right-row (build) order — even when two disjuncts select the same right
// row (dedup) or select rows in reverse build order (sort). The tagger's
// merge relies on this stream order, so it must not change.
TEST_F(ExecHotPathTest, DisjunctiveJoinStreamOrder) {
  TableSchema l("L", {{"a", DataType::kInt64, false},
                      {"b", DataType::kInt64, false}});
  ASSERT_TRUE(db_.CreateTable(l).ok());
  TableSchema r("R", {{"k", DataType::kInt64, false},
                      {"tag", DataType::kString, false}});
  ASSERT_TRUE(db_.CreateTable(r).ok());

  // Right rows in build order: r0 has k=7, r1 has k=5.
  Insert("R", {Value::Int64(7), Value::String("r0")});
  Insert("R", {Value::Int64(5), Value::String("r1")});
  Insert("R", {Value::Int64(9), Value::String("r2")});
  // (5,7): disjunct a=k hits r1, disjunct b=k hits r0 — concatenated
  // per-disjunct matches arrive as [r1, r0] and must come out [r0, r1].
  Insert("L", {Value::Int64(5), Value::Int64(7)});
  // (5,5): both disjuncts hit r1 — must come out once.
  Insert("L", {Value::Int64(5), Value::Int64(5)});
  // (1,1): no match — left outer pads with NULLs.
  Insert("L", {Value::Int64(1), Value::Int64(1)});

  Relation out = Run(
      "select l.a, l.b, r.k, r.tag from L l left outer join R r "
      "on (l.a = r.k) or (l.b = r.k)");
  EXPECT_EQ(last_stats_.nested_loop_joins, 0u);  // decomposed, not fallback
  ASSERT_EQ(out.rows.size(), 4u);
  EXPECT_EQ(out.rows[0][3].AsString(), "r0");  // global right order restored
  EXPECT_EQ(out.rows[1][3].AsString(), "r1");
  EXPECT_EQ(out.rows[2][0].AsInt64(), 5);      // (5,5) matched r1 exactly once
  EXPECT_EQ(out.rows[2][3].AsString(), "r1");
  EXPECT_EQ(out.rows[3][0].AsInt64(), 1);      // unmatched left row, padded
  EXPECT_TRUE(out.rows[3][2].is_null());
  EXPECT_TRUE(out.rows[3][3].is_null());
}

// The fused path (final greedy join emits row-id pairs, projection reads
// straight off the join inputs) must produce the same rows as the
// materializing path (ORDER BY disables fusion).
TEST_F(ExecHotPathTest, FusedJoinMatchesMaterializedJoin) {
  const std::string base =
      "select s.name, p.pname from Supplier s, Part p "
      "where s.suppkey = p.suppkey";
  Relation fused = Run(base);
  EXPECT_GE(last_stats_.hash_joins, 1u);
  EXPECT_GT(last_stats_.keys_encoded, 0u);
  Relation materialized = Run(base + " order by s.suppkey, p.pname");

  auto as_pairs = [](const Relation& r) {
    std::vector<std::pair<std::string, std::string>> rows;
    for (const auto& t : r.rows)
      rows.emplace_back(t[0].AsString(), t[1].AsString());
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  std::vector<std::pair<std::string, std::string>> expected = {
      {"s1", "brass"}, {"s1", "steel"}, {"s2", "nickel"}};
  EXPECT_EQ(as_pairs(fused), expected);
  EXPECT_EQ(as_pairs(materialized), expected);
}

// A leftover cross-table residual defeats fusion: pairs are materialized
// into wide tuples and filtered. The surviving rows must be exactly the
// ones the predicate admits.
TEST_F(ExecHotPathTest, ResidualFilterAfterJoin) {
  Relation out = Run(
      "select s.name, p.pname from Supplier s, Part p "
      "where s.suppkey = p.suppkey and p.partkey < 102");
  std::vector<std::string> names;
  for (const auto& t : out.rows) names.push_back(t[1].AsString());
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"brass", "steel"}));
}

// ORDER BY may reference columns the projection dropped; with the borrow
// and fusion machinery in play the aligned pre-projection rows must still
// be available.
TEST_F(ExecHotPathTest, OrderByOnNonProjectedColumnAfterJoin) {
  Relation out = Run(
      "select p.pname from Supplier s, Part p "
      "where s.suppkey = p.suppkey order by p.partkey desc");
  ASSERT_EQ(out.rows.size(), 3u);
  EXPECT_EQ(out.rows[0][0].AsString(), "nickel");
  EXPECT_EQ(out.rows[1][0].AsString(), "steel");
  EXPECT_EQ(out.rows[2][0].AsString(), "brass");
}

// Unfiltered single-table scans borrow the table's rows instead of copying;
// the result must still be complete and ORDER BY on a borrowed scan must
// still work (it materializes through the select-star path).
TEST_F(ExecHotPathTest, BorrowedScanSelectStar) {
  Relation all = Run("select * from Part");
  EXPECT_EQ(all.rows.size(), 3u);
  EXPECT_EQ(last_stats_.rows_scanned, 3u);

  Relation sorted = Run("select * from Part order by pname");
  ASSERT_EQ(sorted.rows.size(), 3u);
  EXPECT_EQ(sorted.rows[0][2].AsString(), "brass");
  EXPECT_EQ(sorted.rows[1][2].AsString(), "nickel");
  EXPECT_EQ(sorted.rows[2][2].AsString(), "steel");
}

/// Fixture for the sort-key paths: `r` records insertion order so tests
/// can assert stability (equal keys keep arrival order on every path).
class SortPathTest : public ExecHotPathTest {
 protected:
  void SetUp() override {
    TableSchema m("M", {{"a", DataType::kInt64, true},
                        {"b", DataType::kDouble, false},
                        {"s", DataType::kString, false},
                        {"r", DataType::kInt64, false}});
    ASSERT_TRUE(db_.CreateTable(m).ok());
    Insert("M", {Value::Int64(2), Value::Double(1.5), Value::String("x"),
                 Value::Int64(0)});
    Insert("M", {Value::Int64(1), Value::Double(-0.5), Value::String("y"),
                 Value::Int64(1)});
    Insert("M", {Value::Int64(2), Value::Double(-3.0), Value::String("z"),
                 Value::Int64(2)});
    Insert("M", {Value::Int64(1), Value::Double(-0.5), Value::String("w"),
                 Value::Int64(3)});
    Insert("M", {Value::Int64(2), Value::Double(1.5), Value::String("q"),
                 Value::Int64(4)});
  }

  std::vector<int64_t> RunOrder(const std::string& order_by) {
    Relation out = Run("select m.a, m.b, m.s, m.r from M m order by " +
                       order_by);
    std::vector<int64_t> ids;
    for (const auto& t : out.rows) ids.push_back(t[3].AsInt64());
    return ids;
  }
};

// Two all-numeric direct-column keys take the word-packed fast path; the
// result must match the semantic (stable, NULLs-first) sort order.
TEST_F(SortPathTest, WordPackedTwoNumericKeys) {
  EXPECT_EQ(RunOrder("m.a, m.b"), (std::vector<int64_t>{1, 3, 2, 0, 4}));
}

TEST_F(SortPathTest, WordPackedDescendingFirstKey) {
  EXPECT_EQ(RunOrder("m.a desc, m.b"), (std::vector<int64_t>{2, 0, 4, 1, 3}));
}

// Three keys (and a string key) fall back to the general encoded-byte
// path; ties on (a, b) must break by the string key, then stay stable.
TEST_F(SortPathTest, GeneralPathWithStringKey) {
  EXPECT_EQ(RunOrder("m.a, m.b desc, m.s desc"),
            (std::vector<int64_t>{1, 3, 0, 4, 2}));
}

// A NULL in a numeric key column disqualifies the word-packed path; the
// general path must sort NULLs first (matching Value::Compare).
TEST_F(SortPathTest, NullKeyFallsBackAndSortsFirst) {
  Insert("M", {Value::Null(), Value::Double(0.0), Value::String("n"),
               Value::Int64(5)});
  EXPECT_EQ(RunOrder("m.a, m.b"), (std::vector<int64_t>{5, 1, 3, 2, 0, 4}));
}

}  // namespace
}  // namespace silkroute::engine
