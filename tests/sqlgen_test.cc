#include "silkroute/sqlgen.h"

#include <gtest/gtest.h>

#include "engine/executor.h"
#include "silkroute/queries.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;
using testutil::MustBuildTree;
using testutil::NodeByName;

class SqlGenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = MakeTinyTpch().release();
    tree_ = new ViewTree(MustBuildTree(Query1Rxl(), db_->catalog()));
  }
  static void TearDownTestSuite() {
    delete tree_;
    delete db_;
    tree_ = nullptr;
    db_ = nullptr;
  }

  StreamSpec Generate(const std::vector<int>& nodes, SqlGenStyle style,
                      bool reduce) {
    SqlGenerator gen(tree_, style, reduce);
    auto spec = gen.GenerateComponent(nodes);
    EXPECT_TRUE(spec.ok()) << spec.status();
    return spec.ok() ? std::move(spec).value() : StreamSpec{};
  }

  static Database* db_;
  static ViewTree* tree_;
};

Database* SqlGenTest::db_ = nullptr;
ViewTree* SqlGenTest::tree_ = nullptr;

TEST_F(SqlGenTest, GeneratedSqlParses) {
  for (auto style : {SqlGenStyle::kOuterJoin, SqlGenStyle::kOuterUnion}) {
    for (bool reduce : {false, true}) {
      SqlGenerator gen(tree_, style, reduce);
      auto plan = Partition::Unified(*tree_);
      auto specs = gen.GeneratePlan(plan);
      ASSERT_TRUE(specs.ok()) << specs.status();
      for (const auto& spec : *specs) {
        EXPECT_TRUE(sql::ParseQuery(spec.sql).ok()) << spec.sql;
      }
    }
  }
}

TEST_F(SqlGenTest, SingleNodeComponentIsPlainSelect) {
  StreamSpec spec = Generate({0}, SqlGenStyle::kOuterJoin, false);
  auto q = sql::ParseQuery(spec.sql);
  ASSERT_TRUE(q.ok()) << spec.sql;
  EXPECT_EQ((*q)->cores.size(), 1u);
  EXPECT_FALSE((*q)->order_by.empty());
  // Projects the root label and the supplier key column.
  EXPECT_NE(spec.sql.find("as L1"), std::string::npos);
  EXPECT_NE(spec.sql.find("as v1_1"), std::string::npos);
}

TEST_F(SqlGenTest, OuterUnionUnifiedHasOneCorePerNode) {
  StreamSpec spec = Generate(
      Partition::Unified(*tree_).components()[0].nodes,
      SqlGenStyle::kOuterUnion, false);
  auto q = sql::ParseQuery(spec.sql);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->cores.size(), tree_->num_nodes());
}

TEST_F(SqlGenTest, OuterUnionReducedHasOneCorePerClass) {
  StreamSpec spec = Generate(
      Partition::Unified(*tree_).components()[0].nodes,
      SqlGenStyle::kOuterUnion, true);
  auto q = sql::ParseQuery(spec.sql);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ((*q)->cores.size(), 3u);  // the three Fig. 11 classes
}

TEST_F(SqlGenTest, OuterJoinUnifiedUsesLeftOuterJoinsAndUnions) {
  StreamSpec spec = Generate(
      Partition::Unified(*tree_).components()[0].nodes,
      SqlGenStyle::kOuterJoin, false);
  EXPECT_NE(spec.sql.find("left outer join"), std::string::npos);
  EXPECT_NE(spec.sql.find("union all"), std::string::npos);
}

TEST_F(SqlGenTest, FullyPartitionedPlanNeedsNoOuterJoinOrUnion) {
  // Paper Sec. 3.4: plans with no kept edges require neither construct.
  SqlGenerator gen(tree_, SqlGenStyle::kOuterJoin, false);
  auto specs = gen.GeneratePlan(Partition::FullyPartitioned(*tree_));
  ASSERT_TRUE(specs.ok());
  for (const auto& spec : *specs) {
    EXPECT_EQ(spec.sql.find("outer join"), std::string::npos) << spec.sql;
    EXPECT_EQ(spec.sql.find("union"), std::string::npos) << spec.sql;
  }
}

TEST_F(SqlGenTest, ChainComponentNeedsNoUnion) {
  // A branchless component (supplier-part chain without part's children)
  // uses a join but no union.
  int part = NodeByName(*tree_, "S1.4");
  StreamSpec spec =
      Generate({0, part}, SqlGenStyle::kOuterJoin, false);
  EXPECT_NE(spec.sql.find("left outer join"), std::string::npos);
  EXPECT_EQ(spec.sql.find("union"), std::string::npos) << spec.sql;
}

TEST_F(SqlGenTest, GeneratedQueriesExecute) {
  engine::QueryExecutor exec(db_);
  for (auto style : {SqlGenStyle::kOuterJoin, SqlGenStyle::kOuterUnion}) {
    for (bool reduce : {false, true}) {
      StreamSpec spec = Generate(
          Partition::Unified(*tree_).components()[0].nodes, style, reduce);
      auto rel = exec.ExecuteSql(spec.sql);
      ASSERT_TRUE(rel.ok()) << spec.sql << "\n" << rel.status();
      EXPECT_GT(rel->rows.size(), 0u);
    }
  }
}

TEST_F(SqlGenTest, ResultSortedByInterleavedKey) {
  engine::QueryExecutor exec(db_);
  StreamSpec spec = Generate(
      Partition::Unified(*tree_).components()[0].nodes,
      SqlGenStyle::kOuterUnion, false);
  auto rel = exec.ExecuteSql(spec.sql);
  ASSERT_TRUE(rel.ok());
  // Verify rows are sorted on (L1, v1_1, L2) prefix.
  auto l1 = rel->schema.Resolve("", "L1");
  auto v11 = rel->schema.Resolve("", "v1_1");
  auto l2 = rel->schema.Resolve("", "L2");
  ASSERT_TRUE(l1.ok() && v11.ok() && l2.ok());
  for (size_t i = 1; i < rel->rows.size(); ++i) {
    const Tuple& a = rel->rows[i - 1];
    const Tuple& b = rel->rows[i];
    int c = a[*l1].Compare(b[*l1]);
    if (c == 0) c = a[*v11].Compare(b[*v11]);
    if (c == 0) c = a[*l2].Compare(b[*l2]);
    EXPECT_LE(c, 0) << "row " << i;
    if (c < 0) continue;
  }
}

TEST_F(SqlGenTest, InstanceSpecsInDocumentOrder) {
  StreamSpec spec = Generate(
      Partition::Unified(*tree_).components()[0].nodes,
      SqlGenStyle::kOuterJoin, false);
  ASSERT_EQ(spec.instances.size(), tree_->num_nodes());
  for (size_t i = 1; i < spec.instances.size(); ++i) {
    EXPECT_LT(spec.instances[i - 1].path_labels,
              spec.instances[i].path_labels);
  }
}

TEST_F(SqlGenTest, SubtreeComponentCarriesAncestorIdentity) {
  // The order-subtree component must include the supplier / part identity
  // columns so the tagger can align it with other streams.
  int order = NodeByName(*tree_, "S1.4.2");
  std::vector<int> nodes = {order};
  for (int child : tree_->node(order).children) nodes.push_back(child);
  StreamSpec spec = Generate(nodes, SqlGenStyle::kOuterJoin, false);
  EXPECT_NE(spec.sql.find("v1_1"), std::string::npos);  // suppkey
  EXPECT_NE(spec.sql.find("Supplier"), std::string::npos);
  // Its instances only cover the subtree.
  EXPECT_EQ(spec.instances.size(), 4u);
}

TEST_F(SqlGenTest, ReducedCoveredNodesHaveNoDeepLabelChecks) {
  StreamSpec spec = Generate(
      Partition::Unified(*tree_).components()[0].nodes,
      SqlGenStyle::kOuterJoin, true);
  // The name node (S1.1, level 2) is covered by the root class (head level
  // 1): its label checks must stop at level 1.
  int name_id = NodeByName(*tree_, "S1.1");
  for (const auto& inst : spec.instances) {
    if (inst.node_id != name_id) continue;
    ASSERT_EQ(inst.label_checks.size(), 1u);
    EXPECT_EQ(inst.label_checks[0].first, 1);
  }
}

TEST_F(SqlGenTest, OuterUnionInstanceSpecsHaveNullChecks) {
  StreamSpec spec = Generate(
      Partition::Unified(*tree_).components()[0].nodes,
      SqlGenStyle::kOuterUnion, true);
  int name_id = NodeByName(*tree_, "S1.1");
  bool found = false;
  for (const auto& inst : spec.instances) {
    if (inst.node_id != name_id) continue;
    found = true;
    EXPECT_FALSE(inst.null_levels.empty());
  }
  EXPECT_TRUE(found);
}

TEST_F(SqlGenTest, StyleNamesRender) {
  EXPECT_STREQ(SqlGenStyleToString(SqlGenStyle::kOuterJoin), "outer-join");
  EXPECT_STREQ(SqlGenStyleToString(SqlGenStyle::kOuterUnion), "outer-union");
}

}  // namespace
}  // namespace silkroute::core
