// Cross-process distributed tracing tests (DESIGN.md §14): StitchSubtree
// id-rewrite semantics, server-side phase subtrees stitched under client
// attempt spans through a real EngineServer at service concurrency 1 and
// 8, version-negotiation interop with an emulated legacy peer, chaos
// proof that torn/hostile remote replies never produce a malformed client
// tree, hedged replica races carrying loser subtrees, and the PromServer
// live scrape endpoint staying consistent under 8-way concurrent load
// (the TSan target for this file).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/flaky_proxy.h"
#include "net/frame_io.h"
#include "net/prom_server.h"
#include "net/remote_executor.h"
#include "net/replica_set.h"
#include "net/server.h"
#include "net/socket.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/publishing_service.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute::net {
namespace {

using core::PlanStrategy;
using core::Publisher;
using core::PublishOptions;
using core::testutil::MakeTinyTpch;
using obs::CollectingSink;
using obs::ScopedCurrentSpan;
using obs::Span;
using obs::SpanHandle;
using obs::Tracer;
using service::PublishingService;
using service::ServiceOptions;
using service::ServiceRequest;
using service::ServiceResponse;

const std::string* FindAnnotation(const Span& span, const std::string& key) {
  for (const auto& a : span.annotations) {
    if (a.key == key) return &a.value;
  }
  return nullptr;
}

/// The invariants a stitched cross-process tree must satisfy — the same
/// structural rules tools/trace_check enforces: unique non-empty ids,
/// parents present, child id = parent id + "." + one ordinal, monotone
/// timestamps, children starting no earlier than their parent.
std::map<std::string, const Span*> ExpectWellFormedTree(
    const std::vector<Span>& spans) {
  std::map<std::string, const Span*> by_id;
  for (const auto& s : spans) {
    EXPECT_FALSE(s.id.empty());
    EXPECT_FALSE(s.name.empty()) << "span " << s.id;
    EXPECT_GE(s.end_ns, s.start_ns) << "span " << s.id;
    EXPECT_TRUE(by_id.emplace(s.id, &s).second) << "duplicate id " << s.id;
  }
  for (const auto& s : spans) {
    if (s.parent_id.empty()) {
      EXPECT_EQ(s.id.find('.'), std::string::npos)
          << "root with dotted id " << s.id;
      continue;
    }
    auto parent = by_id.find(s.parent_id);
    EXPECT_NE(parent, by_id.end()) << "missing parent of " << s.id;
    if (parent == by_id.end()) continue;
    const std::string prefix = s.parent_id + ".";
    EXPECT_EQ(s.id.rfind(prefix, 0), 0u)
        << "id " << s.id << " not under parent " << s.parent_id;
    if (s.id.rfind(prefix, 0) != 0) continue;
    EXPECT_EQ(s.id.find('.', prefix.size()), std::string::npos)
        << "id " << s.id << " skips a generation under " << s.parent_id;
    EXPECT_GE(s.start_ns, parent->second->start_ns)
        << "child " << s.id << " starts before parent " << s.parent_id;
  }
  return by_id;
}

size_t CountByName(const std::vector<Span>& spans, const std::string& name) {
  size_t n = 0;
  for (const auto& s : spans) {
    if (s.name == name) ++n;
  }
  return n;
}

// ---------------------------------------------------------------------------
// StitchSubtree unit semantics.

TEST(StitchSubtreeTest, GraftsSubtreeUnderFreshOrdinalsWithOffset) {
  CollectingSink sink;
  Tracer tracer(&sink);
  SpanHandle root = tracer.StartRoot("attempt");
  SpanHandle sibling = tracer.StartChild(&root, "existing");
  sibling.End();

  // A remote subtree in the server tracer's own id space. The offset
  // re-bases it on this tracer's clock (the client samples NowNs at send).
  uint64_t base = tracer.NowNs();
  std::vector<Span> remote(3);
  remote[0] = {"1", "", "server", 10, 900, {}};
  remote[1] = {"1.1", "1", "phase:execute", 20, 800, {}};
  remote[2] = {"1.1.1", "1.1", "morsel", 30, 700, {}};
  tracer.StitchSubtree(&root, std::move(remote), base);
  root.End();

  std::vector<Span> spans = sink.spans();
  auto by_id = ExpectWellFormedTree(spans);
  // The subtree root took the next ordinal after "existing" (1.1): 1.2.
  ASSERT_TRUE(by_id.count("1.2"));
  EXPECT_EQ(by_id["1.2"]->name, "server");
  EXPECT_EQ(by_id["1.2"]->parent_id, "1");
  EXPECT_EQ(by_id["1.2"]->start_ns, base + 10);  // shifted by offset_ns
  EXPECT_EQ(by_id["1.2"]->end_ns, base + 900);
  ASSERT_TRUE(by_id.count("1.2.1"));
  EXPECT_EQ(by_id["1.2.1"]->name, "phase:execute");
  ASSERT_TRUE(by_id.count("1.2.1.1"));
  EXPECT_EQ(by_id["1.2.1.1"]->name, "morsel");
}

TEST(StitchSubtreeTest, SpansWithAbsentParentsBecomeRoots) {
  // A span whose parent is absent from the batch is a subtree root in its
  // own right — a server that shipped a partial tree still stitches.
  CollectingSink sink;
  Tracer tracer(&sink);
  SpanHandle root = tracer.StartRoot("attempt");
  uint64_t base = tracer.NowNs();
  std::vector<Span> remote(2);
  remote[0] = {"4.7", "4", "orphan", 5, 6, {}};  // parent "4" not shipped
  remote[1] = {"4.7.1", "4.7", "child", 5, 6, {}};
  tracer.StitchSubtree(&root, std::move(remote), base);
  root.End();

  std::vector<Span> spans = sink.spans();
  auto by_id = ExpectWellFormedTree(spans);
  ASSERT_TRUE(by_id.count("1.1"));
  EXPECT_EQ(by_id["1.1"]->name, "orphan");
  ASSERT_TRUE(by_id.count("1.1.1"));
  EXPECT_EQ(by_id["1.1.1"]->name, "child");
}

TEST(StitchSubtreeTest, MalformedSpansAreDroppedNeverDangling) {
  // A span claiming a parent that IS in the batch but whose id does not
  // fall under that parent's id is malformed: it must be dropped, not
  // emitted with an unresolvable parent.
  CollectingSink sink;
  Tracer tracer(&sink);
  SpanHandle root = tracer.StartRoot("attempt");
  uint64_t base = tracer.NowNs();
  std::vector<Span> remote(2);
  remote[0] = {"1", "", "server", 0, 1, {}};
  remote[1] = {"9.5", "1", "liar", 0, 1, {}};  // parent "1", id not under it
  tracer.StitchSubtree(&root, std::move(remote), base);
  root.End();

  std::vector<Span> spans = sink.spans();
  ExpectWellFormedTree(spans);
  EXPECT_EQ(CountByName(spans, "server"), 1u);
  EXPECT_EQ(CountByName(spans, "liar"), 0u);
}

TEST(StitchSubtreeTest, InertParentAndEmptyBatchAreNoOps) {
  CollectingSink sink;
  Tracer tracer(&sink);
  SpanHandle inert;  // not recording
  std::vector<Span> remote(1);
  remote[0] = {"1", "", "server", 0, 1, {}};
  tracer.StitchSubtree(&inert, std::move(remote), 0);
  SpanHandle root = tracer.StartRoot("attempt");
  tracer.StitchSubtree(&root, {}, 0);
  root.End();
  EXPECT_EQ(sink.size(), 1u);  // only the root itself
}

// ---------------------------------------------------------------------------
// Cross-process stitching through a real EngineServer.

class StitchFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTinyTpch(0.002);
    EngineServerOptions server_options;
    server_options.workers = 4;
    server_ = std::make_unique<EngineServer>(db_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  static PublishOptions PublishOpts() {
    PublishOptions options;
    options.strategy = PlanStrategy::kFullyPartitioned;
    options.strict = true;
    return options;
  }

  RemoteExecutorOptions RemoteOpts(uint16_t port) {
    RemoteExecutorOptions options;
    options.port = port;
    options.connect_attempts = 2;
    options.dial_timeout_ms = 500;
    options.backoff_initial_ms = 5;
    options.backoff_max_ms = 20;
    return options;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<EngineServer> server_;
};

/// Checks the headline invariant on a published trace: every "server" span
/// sits under a client-side attempt span, carries the server phase
/// children, and the phases' ms sum never exceeds the attempt's duration
/// (the trace_check tolerance: 1% relative + rounding slack).
void ExpectServerSubtreesWellPlaced(const std::vector<Span>& spans) {
  auto by_id = ExpectWellFormedTree(spans);
  for (const auto& s : spans) {
    if (s.name != "server") continue;
    ASSERT_FALSE(s.parent_id.empty()) << "unstitched server span " << s.id;
    auto parent = by_id.find(s.parent_id);
    ASSERT_NE(parent, by_id.end());
    const Span& attempt = *parent->second;
    // The stitch parent is whatever client-side span issued the exchange:
    // the resilient executor's per-try span, a replica race's attempt, the
    // service's query phase, or a bare traced call's root.
    EXPECT_TRUE(attempt.name == "attempt" ||
                attempt.name == "replica_attempt" ||
                attempt.name == "phase:query" || attempt.name == "request")
        << "server span " << s.id << " under " << attempt.name;
    EXPECT_NE(FindAnnotation(s, "sql"), nullptr) << s.id;
    EXPECT_NE(FindAnnotation(s, "trace_id"), nullptr) << s.id;

    double phase_sum = 0;
    size_t phases = 0;
    for (const auto& child : spans) {
      if (child.parent_id != s.id || child.name.rfind("phase:", 0) != 0) {
        continue;
      }
      const std::string* ms = FindAnnotation(child, "ms");
      ASSERT_NE(ms, nullptr) << child.name << " " << child.id;
      phase_sum += std::atof(ms->c_str());
      ++phases;
    }
    EXPECT_EQ(phases, 3u) << "server span " << s.id
                          << " lacks queue_wait/execute/serialize";
    double attempt_ms = attempt.duration_ms();
    EXPECT_LE(phase_sum, attempt_ms + 0.01 * attempt_ms +
                             0.001 * static_cast<double>(phases + 1) + 0.5)
        << "server phases of " << s.id << " exceed attempt " << attempt.id;
  }
}

TEST_F(StitchFixture, FederatedTraceStitchesServerSubtreesAcrossConcurrency) {
  for (size_t workers : {size_t{1}, size_t{8}}) {
    CollectingSink sink;
    Tracer tracer(&sink);
    RemoteSqlExecutor remote(RemoteOpts(server_->port()));
    ServiceOptions service_options;
    service_options.workers = workers;
    service_options.executor = &remote;
    service_options.tracer = &tracer;
    PublishingService service(db_.get(), service_options);

    ServiceRequest request;
    request.rxl = core::Query1Rxl();
    request.options = PublishOpts();
    ServiceResponse response = service.Publish(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    service.Shutdown();  // all workers joined: every span has been sunk

    std::vector<Span> spans = sink.spans();
    ExpectServerSubtreesWellPlaced(spans);
    size_t components = CountByName(spans, "component");
    size_t servers = CountByName(spans, "server");
    ASSERT_GT(components, 0u) << "workers=" << workers;
    // Every component query ran remotely and shipped its subtree back.
    EXPECT_EQ(servers, components) << "workers=" << workers;
    EXPECT_EQ(remote.trace_stitches(), servers) << "workers=" << workers;
    EXPECT_EQ(remote.peer_version(), 2) << "workers=" << workers;
    remote.Shutdown();
  }
}

TEST_F(StitchFixture, UntracedTrafficStaysLegacyOnTheWire) {
  // Without a recording span there is no trace context to carry, so the
  // client never sends v2 and never learns the peer's version.
  RemoteSqlExecutor remote(RemoteOpts(server_->port()));
  auto result = remote.ExecuteSql("select suppkey from Supplier");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(remote.peer_version(), 0);
  EXPECT_EQ(remote.trace_stitches(), 0u);
  remote.Shutdown();
}

TEST_F(StitchFixture, LegacyPeerInteropDowngradesAndStaysWellFormed) {
  // A pre-v2 server (emulated): the traced exchange dies at its header
  // decode, the client downgrades the backend to v1 and re-sends untraced.
  // The caller still gets its rows; the trace records the downgrade and
  // contains no server subtree; later calls skip v2 entirely.
  EngineServerOptions legacy_options;
  legacy_options.emulate_legacy = true;
  EngineServer legacy(db_.get(), legacy_options);
  ASSERT_TRUE(legacy.Start().ok());

  CollectingSink sink;
  Tracer tracer(&sink);
  RemoteSqlExecutor remote(RemoteOpts(legacy.port()));
  const std::string sql = "select suppkey from Supplier order by suppkey";
  {
    SpanHandle root = tracer.StartRoot("request");
    ScopedCurrentSpan scope(&root);
    auto result = remote.ExecuteSqlWithDeadline(sql, 5000);
    ASSERT_TRUE(result.ok()) << result.status();
    auto supplier = db_->GetTable("Supplier");
    ASSERT_TRUE(supplier.ok());
    EXPECT_EQ(result->rows.size(), (*supplier)->num_rows());
  }
  EXPECT_EQ(remote.peer_version(), 1);

  std::vector<Span> spans = sink.spans();
  ExpectWellFormedTree(spans);
  EXPECT_EQ(CountByName(spans, "server"), 0u);
  bool downgraded = false;
  for (const auto& s : spans) {
    if (FindAnnotation(s, "wire_downgrade") != nullptr) downgraded = true;
  }
  EXPECT_TRUE(downgraded) << "downgrade not annotated on any span";

  // The negotiated version sticks: the next traced call goes straight to
  // v1 (no second downgrade round-trip) and still succeeds.
  {
    SpanHandle root = tracer.StartRoot("request");
    ScopedCurrentSpan scope(&root);
    auto again = remote.ExecuteSqlWithDeadline(sql, 5000);
    ASSERT_TRUE(again.ok()) << again.status();
  }
  EXPECT_EQ(remote.peer_version(), 1);
  ExpectWellFormedTree(sink.spans());
  remote.Shutdown();
  legacy.Shutdown();
}

TEST_F(StitchFixture, HostileTraceBlockFromServerNeverMalformsClientTree) {
  // A "server" that answers a traced request with a traced kEnd whose
  // trace block is hostile garbage. The client must fail the exchange
  // cleanly and emit no stitched span — never a dangling or torn tree.
  auto bound = Listener::Bind("127.0.0.1", 0);
  ASSERT_TRUE(bound.ok()) << bound.status();
  Listener listener = std::move(bound).value();
  std::thread fake([&listener] {
    IoOptions io = IoOptions::WithTimeout(5000);
    auto socket = listener.Accept(io);
    if (!socket.ok()) return;
    auto request = ReadFrame(&*socket, io);
    if (!request.ok()) return;
    FrameHeader end;
    end.version = kWireVersion;
    end.flags = kFlagTrace;
    end.type = FrameType::kEnd;
    end.request_id = request->header.request_id;
    // 16-byte base claiming zero rows, then a hostile span count.
    std::string payload(16, '\0');
    payload += std::string("\xFF\xFF\xFF\x7F", 4);
    (void)WriteFrame(&*socket, end, payload, io);
    // Hold the socket open briefly so the client, not us, decides.
    auto extra = ReadFrame(&*socket, io);
    (void)extra;
  });

  CollectingSink sink;
  Tracer tracer(&sink);
  auto options = RemoteOpts(listener.port());
  options.connect_attempts = 1;
  RemoteSqlExecutor remote(options);
  {
    SpanHandle root = tracer.StartRoot("request");
    ScopedCurrentSpan scope(&root);
    auto result =
        remote.ExecuteSqlWithDeadline("select suppkey from Supplier", 2000);
    EXPECT_FALSE(result.ok());
  }
  remote.Shutdown();
  fake.join();
  listener.Close();

  std::vector<Span> spans = sink.spans();
  ExpectWellFormedTree(spans);
  EXPECT_EQ(CountByName(spans, "server"), 0u);
  EXPECT_EQ(remote.trace_stitches(), 0u);
  EXPECT_GE(remote.decode_errors(), 1u);
}

TEST_F(StitchFixture, ChaosTracedSweepNeverMalformsClientTree) {
  // Seeded FlakyProxy schedules between a traced client and a real server:
  // whatever the proxy tears, stalls, or resets, every schedule must end
  // with a clean status and a structurally valid trace.
  constexpr int kSchedules = 48;
  int ok_count = 0;
  int failed_count = 0;
  for (int schedule = 0; schedule < kSchedules; ++schedule) {
    FlakyProxyOptions proxy_options;
    proxy_options.upstream_port = server_->port();
    proxy_options.seed = 0x7ACE0000u + static_cast<uint64_t>(schedule);
    proxy_options.max_stall_ms = 50;
    FlakyProxy proxy(proxy_options);
    ASSERT_TRUE(proxy.Start().ok());

    CollectingSink sink;
    Tracer tracer(&sink);
    RemoteSqlExecutor remote(RemoteOpts(proxy.port()));
    {
      SpanHandle root = tracer.StartRoot("request");
      ScopedCurrentSpan scope(&root);
      auto result = remote.ExecuteSqlWithDeadline(
          "select suppkey from Supplier order by suppkey", 3000);
      if (result.ok()) {
        ++ok_count;
      } else {
        ++failed_count;
      }
    }
    remote.Shutdown();
    proxy.Shutdown();

    std::vector<Span> spans = sink.spans();
    ExpectServerSubtreesWellPlaced(spans);  // includes well-formedness
  }
  // The sweep must exercise both outcomes for the invariant to mean much.
  EXPECT_GT(ok_count, 0);
  EXPECT_GT(failed_count, 0);
}

TEST_F(StitchFixture, HedgedRaceCarriesAttemptSpansForWinnerAndLoser) {
  // Two replicas of the same healthy server, hedging after 0ms: every call
  // races two attempts. Both replica_attempt spans must appear under the
  // coordinator's span — the cancelled loser included — and the stitched
  // tree must stay well-formed with at least one server subtree per call.
  ReplicaSetOptions set_options;
  set_options.backend = "east";
  set_options.remote = RemoteOpts(0);
  set_options.endpoints = {{"r0", "127.0.0.1", server_->port()},
                           {"r1", "127.0.0.1", server_->port()}};
  set_options.hedge_initial_delay_ms = 0;
  set_options.hedge_warmup = 1000000;  // always use the initial delay
  set_options.hedge_budget_ratio = 1.0;
  set_options.hedge_budget_cap = 100;
  ReplicaSet set(std::move(set_options));

  CollectingSink sink;
  Tracer tracer(&sink);
  constexpr int kCalls = 6;
  for (int i = 0; i < kCalls; ++i) {
    SpanHandle root = tracer.StartRoot("request");
    ScopedCurrentSpan scope(&root);
    auto result = set.ExecuteSqlWithDeadline(
        "select suppkey from Supplier order by suppkey", 10000);
    ASSERT_TRUE(result.ok()) << i << ": " << result.status();
  }
  EXPECT_GE(set.hedges_fired(), 1u);
  set.Shutdown();  // joins in-flight losers so their spans reach the sink

  std::vector<Span> spans = sink.spans();
  ExpectServerSubtreesWellPlaced(spans);
  size_t attempts = CountByName(spans, "replica_attempt");
  size_t servers = CountByName(spans, "server");
  // Every call has an attempt span; fired hedges add loser attempts.
  EXPECT_GT(attempts, static_cast<size_t>(kCalls));
  // Winners always ship a subtree; drained losers may add more.
  EXPECT_GE(servers, static_cast<size_t>(kCalls));
  bool hedge_attempt_seen = false;
  for (const auto& s : spans) {
    if (s.name != "replica_attempt") continue;
    EXPECT_NE(FindAnnotation(s, "replica"), nullptr) << s.id;
    const std::string* hedge = FindAnnotation(s, "hedge");
    if (hedge != nullptr && *hedge == "true") hedge_attempt_seen = true;
  }
  EXPECT_TRUE(hedge_attempt_seen);
}

// ---------------------------------------------------------------------------
// Live scrape endpoints under load (the TSan case): PromServer over HTTP
// and FetchServerStats over the wire, both scraped while 8 concurrent
// publishers drive a remote-backed service; mid-run counters must parse
// and never exceed the post-run totals.

Result<std::string> HttpGet(uint16_t port) {
  IoOptions io = IoOptions::WithTimeout(5000);
  auto socket = Dial("127.0.0.1", port, io);
  SILK_RETURN_IF_ERROR(socket.status());
  const std::string request = "GET /metrics HTTP/1.0\r\n\r\n";
  SILK_RETURN_IF_ERROR(
      socket->WriteFull(request.data(), request.size(), io));
  std::string response;
  char buffer[4096];
  for (;;) {
    size_t got = 0;
    Status status = socket->ReadSome(buffer, sizeof(buffer), &got, io);
    if (!status.ok() || got == 0) break;
    response.append(buffer, got);
  }
  return response;
}

/// Parses counter lines ("name value", name not starting with '#') out of
/// a Prometheus text body; EXPECTs every line to be structurally valid.
std::map<std::string, uint64_t> ParseExposition(const std::string& body) {
  std::map<std::string, uint64_t> values;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.rfind("# TYPE ", 0) == 0) continue;
    EXPECT_NE(line[0], '#') << "unknown comment form: " << line;
    size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << line;
    if (space == std::string::npos) continue;
    EXPECT_EQ(line.rfind("silkroute_", 0), 0u) << line;
    values[line.substr(0, space)] =
        static_cast<uint64_t>(std::strtoull(line.c_str() + space + 1,
                                            nullptr, 10));
  }
  return values;
}

TEST_F(StitchFixture, LiveScrapeStaysConsistentUnderConcurrentLoad) {
  obs::MetricsRegistry registry;
  PromServer prom(&registry, "127.0.0.1", 0);
  ASSERT_TRUE(prom.Start().ok());

  auto remote_options = RemoteOpts(server_->port());
  remote_options.metrics = &registry;
  RemoteSqlExecutor remote(remote_options);
  ServiceOptions service_options;
  service_options.workers = 8;
  service_options.executor = &remote;
  service_options.metrics_registry = &registry;
  PublishingService service(db_.get(), service_options);

  ServiceRequest prototype;
  prototype.rxl = std::string(core::Query1Rxl());
  prototype.options = PublishOpts();

  std::atomic<bool> done{false};
  std::map<std::string, uint64_t> mid_counters;
  size_t scrapes = 0;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      auto body = HttpGet(prom.port());
      ASSERT_TRUE(body.ok()) << body.status();
      // HTTP/1.0, status 200, text exposition content type, then a body
      // that parses — a real Prometheus scrape would accept this.
      EXPECT_EQ(body->rfind("HTTP/1.0 200 OK\r\n", 0), 0u);
      EXPECT_NE(body->find("Content-Type: text/plain; version=0.0.4"),
                std::string::npos);
      size_t split = body->find("\r\n\r\n");
      ASSERT_NE(split, std::string::npos);
      std::map<std::string, uint64_t> counters =
          ParseExposition(body->substr(split + 4));
      // Monotone across scrapes: counters never go backwards mid-run.
      for (const auto& [name, value] : counters) {
        auto it = mid_counters.find(name);
        if (it != mid_counters.end() &&
            name.find("_total") != std::string::npos) {
          EXPECT_GE(value, it->second) << name;
        }
        mid_counters[name] = value;
      }
      ++scrapes;
      std::this_thread::yield();
    }
  });

  std::vector<ServiceRequest> batch(8, prototype);
  std::vector<ServiceResponse> responses = service.PublishAll(std::move(batch));
  done.store(true, std::memory_order_release);
  scraper.join();
  for (const auto& response : responses) {
    EXPECT_TRUE(response.status.ok()) << response.status;
  }
  EXPECT_GE(prom.scrapes_served(), scrapes);
  EXPECT_GT(scrapes, 0u);

  // The post-run snapshot dominates every mid-run counter observation.
  std::ostringstream post;
  obs::WritePrometheusText(post, registry.Snapshot());
  std::map<std::string, uint64_t> final_counters =
      ParseExposition(post.str());
  for (const auto& [name, value] : mid_counters) {
    if (name.find("_total") == std::string::npos) continue;  // gauges move
    auto it = final_counters.find(name);
    ASSERT_NE(it, final_counters.end()) << name;
    EXPECT_GE(it->second, value) << name;
  }
  EXPECT_EQ(final_counters.at("silkroute_requests_completed_total"), 8u);

  service.Shutdown();
  remote.Shutdown();
  prom.Shutdown();
}

TEST_F(StitchFixture, WireScrapeMatchesServerCountersAndRejectsLegacyPeer) {
  // A metrics-enabled server scraped over the wire via the v2 kStats frame.
  obs::MetricsRegistry registry;
  EngineServerOptions server_options;
  server_options.metrics = &registry;
  EngineServer server(db_.get(), server_options);
  ASSERT_TRUE(server.Start().ok());

  RemoteSqlExecutor remote(RemoteOpts(server.port()));
  ASSERT_TRUE(remote.ExecuteSql("select suppkey from Supplier").ok());
  remote.Shutdown();

  auto stats = FetchServerStats("127.0.0.1", server.port(), 2000);
  ASSERT_TRUE(stats.ok()) << stats.status();
  std::map<std::string, uint64_t> counters = ParseExposition(*stats);
  EXPECT_EQ(counters.at("silkroute_server_requests_total"), 1u);
  EXPECT_GE(counters.at("silkroute_server_frames_out_total"), 2u);
  server.Shutdown();

  // A legacy peer kills the connection on the v2 frame: clean kUnavailable,
  // not a hang or a garbage payload.
  EngineServerOptions legacy_options;
  legacy_options.emulate_legacy = true;
  EngineServer legacy(db_.get(), legacy_options);
  ASSERT_TRUE(legacy.Start().ok());
  auto refused = FetchServerStats("127.0.0.1", legacy.port(), 2000);
  EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);
  legacy.Shutdown();
}

}  // namespace
}  // namespace silkroute::net
