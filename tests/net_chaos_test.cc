// Networked federation tests: EngineServer <-> RemoteSqlExecutor
// equivalence over real loopback sockets, deadline propagation through the
// frame header, cancellation of blocked reads, 1-vs-8 service concurrency
// determinism through a socket pair, the seeded FlakyProxy chaos loop
// (torn frames, truncated/oversized lengths, resets, stalls, refusals),
// end-to-end failover when the remote server is killed and restarted,
// connection-pool TTL hygiene, and the replica-set chaos suite: 200
// seeded schedules of dead/slow/flapping/reset replicas plus the
// kill-one-of-three recovery story (DESIGN.md §13).
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/flaky_proxy.h"
#include "net/remote_executor.h"
#include "net/replica_set.h"
#include "net/server.h"
#include "service/federated_executor.h"
#include "service/publishing_service.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute::net {
namespace {

using core::PlanStrategy;
using core::Publisher;
using core::PublishOptions;
using core::testutil::MakeTinyTpch;
using service::FederatedExecutor;
using service::FederatedExecutorOptions;
using service::PublishingService;
using service::ServiceOptions;
using service::ServiceRequest;
using service::ServiceResponse;

/// Shared fixture: one tiny TPC-H database, one EngineServer over it, and
/// the serial in-process reference XML the networked paths must reproduce
/// byte-for-byte.
class NetFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = MakeTinyTpch(0.002);
    EngineServerOptions server_options;
    server_options.workers = 4;
    server_ = std::make_unique<EngineServer>(db_.get(), server_options);
    ASSERT_TRUE(server_->Start().ok());

    Publisher publisher(db_.get());
    PublishOptions options = PublishOpts();
    std::ostringstream out;
    auto result = publisher.Publish(core::Query1Rxl(), options, &out);
    ASSERT_TRUE(result.ok()) << result.status();
    reference_ = out.str();
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Shutdown();
  }

  static PublishOptions PublishOpts() {
    PublishOptions options;
    options.strategy = PlanStrategy::kFullyPartitioned;
    // Strict: a failed component fails the publish instead of degrading to
    // a partial document. The chaos invariant is "byte-identical XML or a
    // clean error" — best-effort skipping would turn an unavailable
    // component into silently missing elements.
    options.strict = true;
    return options;
  }

  RemoteExecutorOptions RemoteOpts(uint16_t port) {
    RemoteExecutorOptions options;
    options.port = port;
    options.connect_attempts = 2;
    options.dial_timeout_ms = 500;
    options.backoff_initial_ms = 5;
    options.backoff_max_ms = 20;
    return options;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<EngineServer> server_;
  std::string reference_;
};

TEST_F(NetFixture, RemoteExecutionMatchesLocal) {
  engine::DatabaseExecutor local(db_.get());
  RemoteSqlExecutor remote(RemoteOpts(server_->port()));
  const std::string sql =
      "select suppkey, name from Supplier order by suppkey";
  auto local_result = local.ExecuteSql(sql);
  ASSERT_TRUE(local_result.ok()) << local_result.status();
  auto remote_result = remote.ExecuteSql(sql);
  ASSERT_TRUE(remote_result.ok()) << remote_result.status();
  ASSERT_EQ(remote_result->rows.size(), local_result->rows.size());
  ASSERT_EQ(remote_result->schema.size(), local_result->schema.size());
  for (size_t i = 0; i < local_result->rows.size(); ++i) {
    EXPECT_EQ(remote_result->rows[i], local_result->rows[i]) << i;
  }
  // The served counter increments on the connection thread after the final
  // frame is written, so the client can hold the response a beat earlier.
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (server_->requests_served() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server_->requests_served(), 1u);
  // The exchange's connection was parked for reuse.
  EXPECT_EQ(remote.pooled_connections(), 1u);
  auto again = remote.ExecuteSql(sql);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(server_->connections_accepted(), 1u);  // reused, not re-dialed
}

TEST_F(NetFixture, ServerReportsSqlErrorsAsCleanStatus) {
  RemoteSqlExecutor remote(RemoteOpts(server_->port()));
  auto result = remote.ExecuteSql("select nope from NoSuchTable");
  EXPECT_FALSE(result.ok());
  // The carried code passes through verbatim — not disguised as a
  // transport failure.
  EXPECT_NE(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(NetFixture, DeadlinePropagatesThroughFrameHeader) {
  // Raw frame exchange: a request whose header carries a 1µs budget must
  // be rejected by the *server's* deadline check — proof that the budget
  // rides the wire, not just the client's clock.
  IoOptions io = IoOptions::WithTimeout(5000);
  auto socket = Dial("127.0.0.1", server_->port(), io);
  ASSERT_TRUE(socket.ok()) << socket.status();
  FrameHeader header;
  header.type = FrameType::kRequest;
  header.request_id = 99;
  header.budget_us = 1;
  std::string payload;
  EncodeRequestPayload("select suppkey from Supplier", &payload);
  ASSERT_TRUE(WriteFrame(&*socket, header, payload, io).ok());
  auto response = ReadFrame(&*socket, io);
  ASSERT_TRUE(response.ok()) << response.status();
  ASSERT_EQ(response->header.type, FrameType::kError);
  EXPECT_EQ(response->header.request_id, 99u);
  Status carried = Status::OK();
  ASSERT_TRUE(DecodeErrorPayload(response->payload, &carried).ok());
  EXPECT_EQ(carried.code(), StatusCode::kTimeout) << carried;
  EXPECT_GE(server_->deadline_rejects() + server_->requests_failed(), 1u);

  // And through the executor: a sub-millisecond budget times out cleanly.
  RemoteSqlExecutor remote(RemoteOpts(server_->port()));
  auto result = remote.ExecuteSqlWithDeadline(
      "select suppkey from Supplier", 0.05);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout)
      << result.status();
}

TEST_F(NetFixture, ConnectionRefusedIsUnavailableAfterRetries) {
  Listener dead = std::move(Listener::Bind("127.0.0.1", 0)).value();
  uint16_t port = dead.port();
  dead.Close();  // nothing listens here now
  RemoteSqlExecutor remote(RemoteOpts(port));
  auto result = remote.ExecuteSql("select 1 from Supplier");
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_GE(remote.reconnects(), 1u);  // backoff retries happened
}

// Regression: Shutdown() must unblock a client whose read is stuck on a
// server that accepted the connection but will never respond.
TEST(NetCancelTest, ShutdownUnblocksReadStuckOnDeadServer) {
  auto silent = std::move(Listener::Bind("127.0.0.1", 0)).value();
  RemoteExecutorOptions options;
  options.port = silent.port();
  options.poll_interval_ms = 5;
  RemoteSqlExecutor remote(options);

  std::atomic<bool> returned{false};
  Status status = Status::OK();
  std::thread caller([&] {
    // No deadline: without cancellation this read would block forever.
    auto result = remote.ExecuteSqlWithDeadline("select 1 from T", 0);
    status = result.status();
    returned.store(true);
  });
  // Give the caller time to connect and block in the response read.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(returned.load());
  auto t0 = std::chrono::steady_clock::now();
  remote.Shutdown();
  caller.join();
  double unblock_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_TRUE(returned.load());
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  // Within a few poll intervals, not hanging.
  EXPECT_LT(unblock_ms, 2000.0);
}

TEST_F(NetFixture, ServiceOverSocketPairIsDeterministicAcrossConcurrency) {
  for (size_t workers : {size_t{1}, size_t{8}}) {
    RemoteSqlExecutor remote(RemoteOpts(server_->port()));
    ServiceOptions service_options;
    service_options.workers = workers;
    service_options.executor = &remote;
    PublishingService service(db_.get(), service_options);
    ServiceRequest request;
    request.rxl = core::Query1Rxl();
    request.options = PublishOpts();
    ServiceResponse response = service.Publish(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    EXPECT_EQ(response.xml, reference_) << "workers=" << workers;
    service.Shutdown();
  }
}

// ---------------------------------------------------------------------------
// The chaos loop: >= 200 seeded fault schedules through FlakyProxy, at
// service concurrency 1 and 8, alternating remote-only and federated
// (local-fallback) stacks. Every request must terminate before its
// deadline with either byte-identical XML or a clean error — never a
// crash, hang, or corrupted document.

TEST_F(NetFixture, ChaosScheduleSweepTerminatesCleanly) {
  constexpr int kSchedules = 240;
  constexpr double kDeadlineMs = 15000;
  engine::DatabaseExecutor local(db_.get());
  int ok_count = 0;
  int clean_errors = 0;
  int faults_seen = 0;

  for (int schedule = 0; schedule < kSchedules; ++schedule) {
    FlakyProxyOptions proxy_options;
    proxy_options.upstream_port = server_->port();
    proxy_options.seed = 0x5EED0000u + static_cast<uint64_t>(schedule);
    FlakyProxy proxy(proxy_options);
    ASSERT_TRUE(proxy.Start().ok());

    RemoteSqlExecutor remote(RemoteOpts(proxy.port()));
    const bool federated = schedule % 2 == 1;
    const size_t workers = (schedule / 2) % 2 == 0 ? 1 : 8;

    std::unique_ptr<FederatedExecutor> fed;
    ServiceOptions service_options;
    service_options.workers = workers;
    service_options.retry.max_attempts = 1;
    if (federated) {
      FederatedExecutorOptions fed_options;
      fed_options.local = &local;
      fed_options.remotes.push_back({"remote", &remote, {}});  // catch-all
      fed_options.breaker.failure_threshold = 2;
      fed = std::make_unique<FederatedExecutor>(std::move(fed_options));
      service_options.executor = fed.get();
    } else {
      service_options.executor = &remote;
    }
    PublishingService service(db_.get(), service_options);

    ServiceRequest request;
    request.rxl = core::Query1Rxl();
    request.options = PublishOpts();
    request.deadline_ms = kDeadlineMs;

    auto t0 = std::chrono::steady_clock::now();
    ServiceResponse response = service.Publish(request);
    double elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    // Termination before the deadline (generous slack for sanitizer runs).
    ASSERT_LT(elapsed_ms, kDeadlineMs + 10000)
        << "schedule " << schedule << " hung";

    if (response.status.ok() && !response.result.metrics.timed_out &&
        !response.xml.empty()) {
      // Any produced document must be the exact serial bytes.
      ASSERT_EQ(response.xml, reference_) << "schedule " << schedule;
      ++ok_count;
    } else {
      // Clean, classified error — acceptable for the remote-only stack.
      ++clean_errors;
      if (federated) {
        // With a local fallback the publish itself must succeed unless the
        // request as a whole timed out (stalls can stack up under
        // sanitizers); corrupt output is never acceptable.
        EXPECT_TRUE(response.result.metrics.timed_out ||
                    !response.status.ok())
            << "schedule " << schedule << ": " << response.status;
      }
    }
    faults_seen += static_cast<int>(proxy.faults_injected());
    service.Shutdown();
    remote.Shutdown();
    proxy.Shutdown();
  }

  // The sweep must actually exercise both outcomes and real faults.
  EXPECT_GT(ok_count, 0);
  EXPECT_GT(clean_errors, 0);
  EXPECT_GT(faults_seen, kSchedules / 4);
  // The server survived the entire sweep.
  auto after = server_->requests_served();
  EXPECT_GT(after, 0u);
}

// ---------------------------------------------------------------------------
// End-to-end failover: kill the remote server mid-load, watch the breaker
// trip and the local fallback keep producing identical bytes, then restart
// the server and observe recovery.

TEST_F(NetFixture, FailoverEndToEndAcrossServerKillAndRestart) {
  engine::DatabaseExecutor local(db_.get());
  RemoteSqlExecutor remote(RemoteOpts(server_->port()));

  double now = 0;
  FederatedExecutorOptions fed_options;
  fed_options.local = &local;
  fed_options.remotes.push_back({"east", &remote, {}});
  fed_options.breaker.failure_threshold = 2;
  fed_options.breaker.open_ms = 100;
  fed_options.breaker.now_ms = [&now] { return now; };
  FederatedExecutor fed(std::move(fed_options));

  ServiceOptions service_options;
  service_options.workers = 4;
  service_options.executor = &fed;
  service_options.retry.max_attempts = 1;
  PublishingService service(db_.get(), service_options);
  ServiceRequest request;
  request.rxl = core::Query1Rxl();
  request.options = PublishOpts();

  // Healthy: the remote serves.
  ServiceResponse healthy = service.Publish(request);
  ASSERT_TRUE(healthy.status.ok()) << healthy.status;
  ASSERT_EQ(healthy.xml, reference_);
  ASSERT_GT(fed.remote_queries(), 0u);

  // Kill the server. The next publish rides failover: breaker trips,
  // local fallback produces the same bytes.
  uint16_t port = server_->port();
  server_->Shutdown();
  server_.reset();
  ServiceResponse degraded = service.Publish(request);
  ASSERT_TRUE(degraded.status.ok()) << degraded.status;
  EXPECT_EQ(degraded.xml, reference_);
  EXPECT_GT(fed.failovers(), 0u);
  EXPECT_EQ(fed.breakers()->Get("east")->state(),
            service::BreakerState::kOpen);

  // While the breaker is open, publishes keep succeeding via fast-fail
  // failover without dialing the dead server.
  uint64_t reconnects_before = remote.reconnects();
  ServiceResponse fast = service.Publish(request);
  ASSERT_TRUE(fast.status.ok()) << fast.status;
  EXPECT_EQ(fast.xml, reference_);
  EXPECT_EQ(remote.reconnects(), reconnects_before);

  // Restart the server on the same port; past open_ms the breaker probes,
  // the probe succeeds, and the remote serves again.
  EngineServerOptions server_options;
  server_options.port = port;
  server_ = std::make_unique<EngineServer>(db_.get(), server_options);
  ASSERT_TRUE(server_->Start().ok());
  now += 150;
  uint64_t remote_before = fed.remote_queries();
  ServiceResponse recovered = service.Publish(request);
  ASSERT_TRUE(recovered.status.ok()) << recovered.status;
  EXPECT_EQ(recovered.xml, reference_);
  EXPECT_GT(fed.remote_queries(), remote_before);
  EXPECT_EQ(fed.breakers()->Get("east")->state(),
            service::BreakerState::kClosed);
}

// ---------------------------------------------------------------------------
// Connection-pool hygiene: idle connections older than the TTL are pruned
// (a fresh dial replaces the stale fd), and max_pooled_connections caps
// what gets parked at all.

TEST_F(NetFixture, PoolPrunesIdleConnectionsPastTtlAndCapsSize) {
  auto options = RemoteOpts(server_->port());
  options.pool_idle_ttl_ms = 50;
  RemoteSqlExecutor remote(options);
  const std::string sql = "select suppkey from Supplier order by suppkey";
  ASSERT_TRUE(remote.ExecuteSql(sql).ok());
  EXPECT_EQ(remote.pooled_connections(), 1u);

  // Let the parked connection outlive its TTL: the next call must prune
  // it and dial fresh rather than risk a stale fd.
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  ASSERT_TRUE(remote.ExecuteSql(sql).ok());
  EXPECT_GE(remote.pool_pruned(), 1u);
  EXPECT_EQ(server_->connections_accepted(), 2u);
  EXPECT_EQ(remote.pooled_connections(), 1u);

  // A zero-size pool parks nothing.
  auto capped_options = RemoteOpts(server_->port());
  capped_options.max_pooled_connections = 0;
  RemoteSqlExecutor capped(capped_options);
  ASSERT_TRUE(capped.ExecuteSql(sql).ok());
  EXPECT_EQ(capped.pooled_connections(), 0u);
}

// ---------------------------------------------------------------------------
// Replica-level chaos: >= 200 seeded schedules, each casting three
// replicas of one backend into hashed roles — healthy, dead (closed
// port), slow (stall-only proxy), flapping (any fault, high probability),
// reset (reset-only proxy) — at service concurrency 1 and 8, alternating
// a bare ReplicaSet with a ReplicaSet under the federation router. Every
// request must end before its deadline with byte-identical XML or a clean
// error, and the hedge budget must hold on every schedule.

TEST_F(NetFixture, ReplicaChaosScheduleSweepTerminatesCleanly) {
  constexpr int kSchedules = 200;
  constexpr double kDeadlineMs = 15000;
  engine::DatabaseExecutor local(db_.get());
  int ok_count = 0;
  int clean_errors = 0;
  uint64_t ejections_total = 0;
  uint64_t hedges_total = 0;

  enum class Role { kHealthy, kDead, kSlow, kFlapping, kReset };
  auto role_hash = [](int schedule, int replica) {
    uint64_t z = 0xC4A05EEDull + 0x9E3779B97F4A7C15ull *
                                     (static_cast<uint64_t>(schedule) * 3 +
                                      static_cast<uint64_t>(replica) + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  };

  for (int schedule = 0; schedule < kSchedules; ++schedule) {
    std::vector<std::unique_ptr<FlakyProxy>> proxies;
    ReplicaSetOptions set_options;
    set_options.backend = "east";
    set_options.remote = RemoteOpts(0);  // per-endpoint port overrides
    set_options.breaker.failure_threshold = 2;
    set_options.breaker.open_ms = 150;  // ejected replicas re-probe in-test
    set_options.hedge_initial_delay_ms = 20;
    set_options.hedge_warmup = 1000;  // chaos latencies are not a p95 signal
    set_options.hedge_budget_ratio = 0.3;
    set_options.hedge_budget_cap = 2;
    set_options.retry_budget_ratio = 0.5;
    set_options.retry_budget_cap = 4;
    set_options.seed = 0xF1EE7000u + static_cast<uint64_t>(schedule);

    for (int replica = 0; replica < 3; ++replica) {
      Role role = static_cast<Role>(role_hash(schedule, replica) % 5);
      uint16_t port = 0;
      if (role == Role::kHealthy) {
        port = server_->port();
      } else if (role == Role::kDead) {
        auto dead = std::move(Listener::Bind("127.0.0.1", 0)).value();
        port = dead.port();
        dead.Close();  // nothing listens here now
      } else {
        FlakyProxyOptions proxy_options;
        proxy_options.upstream_port = server_->port();
        proxy_options.seed = role_hash(schedule, replica);
        proxy_options.max_stall_ms = 100;
        if (role == Role::kSlow) {
          proxy_options.allowed_kinds = {FaultKind::kStall};
          proxy_options.fault_probability = 0.9;
        } else if (role == Role::kReset) {
          proxy_options.allowed_kinds = {FaultKind::kReset};
          proxy_options.fault_probability = 0.9;
        } else {
          proxy_options.fault_probability = 0.85;  // flapping: anything goes
        }
        auto proxy = std::make_unique<FlakyProxy>(std::move(proxy_options));
        ASSERT_TRUE(proxy->Start().ok());
        port = proxy->port();
        proxies.push_back(std::move(proxy));
      }
      set_options.endpoints.push_back(
          {"r" + std::to_string(replica), "127.0.0.1", port});
    }
    ReplicaSet set(std::move(set_options));

    const bool federated = schedule % 2 == 1;
    const size_t workers = (schedule / 2) % 2 == 0 ? 1 : 8;
    std::unique_ptr<FederatedExecutor> fed;
    ServiceOptions service_options;
    service_options.workers = workers;
    service_options.retry.max_attempts = 1;
    if (federated) {
      FederatedExecutorOptions fed_options;
      fed_options.local = &local;
      fed_options.remotes.push_back({"east", &set, {}});  // catch-all
      fed_options.breaker.failure_threshold = 2;
      fed = std::make_unique<FederatedExecutor>(std::move(fed_options));
      service_options.executor = fed.get();
    } else {
      service_options.executor = &set;
    }
    PublishingService service(db_.get(), service_options);

    ServiceRequest request;
    request.rxl = core::Query1Rxl();
    request.options = PublishOpts();
    request.deadline_ms = kDeadlineMs;

    auto t0 = std::chrono::steady_clock::now();
    ServiceResponse response = service.Publish(request);
    double elapsed_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    ASSERT_LT(elapsed_ms, kDeadlineMs + 10000)
        << "replica schedule " << schedule << " hung";

    if (response.status.ok() && !response.result.metrics.timed_out &&
        !response.xml.empty()) {
      ASSERT_EQ(response.xml, reference_) << "replica schedule " << schedule;
      ++ok_count;
    } else {
      ++clean_errors;
      if (federated) {
        EXPECT_TRUE(response.result.metrics.timed_out ||
                    !response.status.ok())
            << "replica schedule " << schedule << ": " << response.status;
      }
    }
    // The hedge budget is a hard per-set invariant on every schedule:
    // fired hedges never exceed ratio * requests + cap.
    ASSERT_LE(set.hedges_fired(),
              static_cast<uint64_t>(0.3 * static_cast<double>(set.requests())) +
                  2)
        << "replica schedule " << schedule << " blew the hedge budget";
    ejections_total += set.ejections();
    hedges_total += set.hedges_fired();
    service.Shutdown();
    set.Shutdown();
    for (auto& proxy : proxies) proxy->Shutdown();
  }

  // The sweep exercised both outcomes and the replica machinery for real.
  EXPECT_GT(ok_count, 0);
  EXPECT_GT(clean_errors, 0);
  EXPECT_GT(ejections_total, 0u);
  EXPECT_GT(server_->requests_served(), 0u);
  (void)hedges_total;  // informational; bounded per-schedule above
}

// ---------------------------------------------------------------------------
// The headline replica story: kill one replica of three under load. The
// set ejects it and reroutes; throughput recovers on the survivors; the
// *backend* breaker above never trips and the local fallback is never
// used — replica failure stays a routing event inside the backend.

TEST_F(NetFixture, KillOneReplicaOfThreeRecoversWithoutBackendBreakerTrip) {
  engine::DatabaseExecutor local(db_.get());
  auto extra1 = std::make_unique<EngineServer>(db_.get(),
                                               EngineServerOptions{});
  auto extra2 = std::make_unique<EngineServer>(db_.get(),
                                               EngineServerOptions{});
  ASSERT_TRUE(extra1->Start().ok());
  ASSERT_TRUE(extra2->Start().ok());

  ReplicaSetOptions set_options;
  set_options.backend = "east";
  set_options.remote = RemoteOpts(0);
  set_options.endpoints = {{"r0", "127.0.0.1", server_->port()},
                           {"r1", "127.0.0.1", extra1->port()},
                           {"r2", "127.0.0.1", extra2->port()}};
  set_options.breaker.failure_threshold = 2;
  set_options.breaker.open_ms = 60000;  // no mid-test re-probe of the corpse
  // Generous retry budget: this test is about health routing absorbing a
  // replica death; budget limits have their own tests.
  set_options.retry_budget_ratio = 1.0;
  set_options.retry_budget_cap = 100;
  ReplicaSet set(std::move(set_options));

  FederatedExecutorOptions fed_options;
  fed_options.local = &local;
  fed_options.remotes.push_back({"east", &set, {}});
  fed_options.breaker.failure_threshold = 3;
  FederatedExecutor fed(std::move(fed_options));

  ServiceOptions service_options;
  service_options.workers = 4;
  service_options.executor = &fed;
  service_options.retry.max_attempts = 1;
  PublishingService service(db_.get(), service_options);
  ServiceRequest request;
  request.rxl = core::Query1Rxl();
  request.options = PublishOpts();
  request.deadline_ms = 15000;

  // Warm-up: all three replicas serve.
  for (int i = 0; i < 4; ++i) {
    ServiceResponse response = service.Publish(request);
    ASSERT_TRUE(response.status.ok()) << response.status;
    ASSERT_EQ(response.xml, reference_);
  }

  // Kill replica r2 and keep publishing: every request still succeeds
  // with identical bytes — the set absorbs the death internally.
  extra2->Shutdown();
  extra2.reset();
  for (int i = 0; i < 6; ++i) {
    ServiceResponse response = service.Publish(request);
    ASSERT_TRUE(response.status.ok()) << "post-kill publish " << i << ": "
                                      << response.status;
    ASSERT_EQ(response.xml, reference_) << "post-kill publish " << i;
  }

  // The death was a replica-level event: ejected below, invisible above.
  EXPECT_GE(set.ejections(), 1u);
  EXPECT_EQ(set.replica_stats(2).state, service::BreakerState::kOpen);
  EXPECT_TRUE(set.Healthy());
  EXPECT_EQ(fed.failovers(), 0u) << "local fallback should never be needed";
  EXPECT_EQ(fed.breakers()->Get("east")->state(),
            service::BreakerState::kClosed);
  // Throughput recovered onto the survivors.
  EXPECT_GT(set.replica_stats(0).successes + set.replica_stats(1).successes,
            0u);

  service.Shutdown();
  set.Shutdown();
  extra1->Shutdown();
}

}  // namespace
}  // namespace silkroute::net
