// Tests for the sharded columnar base storage (DESIGN.md §16):
//
//  - ColumnVector round-trips: null bitmap + exact Value identity for
//    every value type a column can hold, including int64 cells inside a
//    kDouble column, -0.0 vs 0.0 bit patterns, and the ±2^53 tiebreaker
//    magnitudes;
//  - string-pool stability under interleaved Reserve/append growth;
//  - shard routing: equal-comparing representations co-locate, NULL keys
//    pool in shard 0;
//  - Table's dual representation: ascending global ids per shard,
//    row_loc round-trips, exact tuple materialization at any shard count;
//  - version()/RowsAppendedSince semantics across shards — the result
//    cache's freshness key must go conservatively stale on every commit,
//    never wrongly fresh;
//  - the columnar_exact escape hatch: an InsertUnchecked row the columnar
//    layout cannot represent drops the table to the row-store path for
//    good while queries stay correct;
//  - a seeded mutation-interleaved republish harness over a 16-shard
//    database (mirror of result_cache_test.cc): warm cached publishes
//    must stay byte-identical to fresh uncached ones while a writer
//    appends rows between publishes.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "engine/executor.h"
#include "engine/result_cache.h"
#include "relational/columnar.h"
#include "relational/database.h"
#include "relational/schema.h"
#include "relational/table.h"
#include "relational/value.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "tests/test_util.h"

namespace silkroute {
namespace {

/// Exact representation identity (the differential harness's notion):
/// Int64(3) != Double(3.0), -0.0 != 0.0 bitwise.
bool ValueIdentical(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_int64() != b.is_int64() || a.is_double() != b.is_double() ||
      a.is_string() != b.is_string()) {
    return false;
  }
  if (a.is_int64()) return a.AsInt64() == b.AsInt64();
  if (a.is_double()) {
    const double x = a.AsDouble();
    const double y = b.AsDouble();
    return std::memcmp(&x, &y, sizeof(x)) == 0;
  }
  return a.AsString() == b.AsString();
}

TEST(ColumnVectorTest, NullBitmapRoundTripsEveryValueType) {
  // kInt64 column: int64s and NULLs.
  {
    ColumnVector cv(DataType::kInt64);
    const std::vector<Value> corpus = {
        Value::Int64(0), Value::Null(), Value::Int64(-1),
        Value::Int64(INT64_MIN), Value::Int64(INT64_MAX), Value::Null(),
        Value::Int64((int64_t{1} << 53) + 1),
        Value::Int64(-(int64_t{1} << 53) - 1)};
    for (const Value& v : corpus) EXPECT_TRUE(cv.Append(v));
    ASSERT_EQ(cv.size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(cv.IsNull(i), corpus[i].is_null()) << "cell " << i;
      EXPECT_TRUE(ValueIdentical(cv.ValueAt(i), corpus[i])) << "cell " << i;
      if (!corpus[i].is_null()) {
        EXPECT_TRUE(cv.CellIsInt64(i)) << "cell " << i;
        EXPECT_EQ(cv.Int64At(i), corpus[i].AsInt64()) << "cell " << i;
      }
    }
  }
  // kDouble column: doubles, *int64s* (legal per Table::Insert's widened
  // type check), and NULLs. The exact subtype must survive.
  {
    ColumnVector cv(DataType::kDouble);
    const std::vector<Value> corpus = {
        Value::Double(-0.0), Value::Double(0.0), Value::Null(),
        Value::Double(-1e300), Value::Double(9007199254740994.0),
        Value::Int64(3), Value::Double(3.0), Value::Null(),
        Value::Int64((int64_t{1} << 53) + 1)};
    for (const Value& v : corpus) EXPECT_TRUE(cv.Append(v));
    ASSERT_EQ(cv.size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(cv.IsNull(i), corpus[i].is_null()) << "cell " << i;
      EXPECT_TRUE(ValueIdentical(cv.ValueAt(i), corpus[i])) << "cell " << i;
      if (!corpus[i].is_null()) {
        EXPECT_EQ(cv.CellIsInt64(i), corpus[i].is_int64()) << "cell " << i;
      }
    }
    // -0.0 and 0.0 are distinct bit patterns in storage.
    const double neg = cv.DoubleAt(0);
    const double pos = cv.DoubleAt(1);
    EXPECT_NE(std::memcmp(&neg, &pos, sizeof(neg)), 0);
  }
  // kString column: strings (embedded NULs included) and NULLs. A NULL
  // string cell and an empty string cell must stay distinguishable.
  {
    ColumnVector cv(DataType::kString);
    const std::vector<Value> corpus = {
        Value::String(""), Value::Null(), Value::String("abc"),
        Value::String(std::string("a\0b", 3)), Value::Null(),
        Value::String(std::string(1000, 'x'))};
    for (const Value& v : corpus) EXPECT_TRUE(cv.Append(v));
    ASSERT_EQ(cv.size(), corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(cv.IsNull(i), corpus[i].is_null()) << "cell " << i;
      EXPECT_TRUE(ValueIdentical(cv.ValueAt(i), corpus[i])) << "cell " << i;
    }
    EXPECT_FALSE(cv.IsNull(0));  // empty string is not NULL
    EXPECT_TRUE(cv.IsNull(1));
  }
}

TEST(ColumnVectorTest, StringPoolStableUnderReserveAndAppendGrowth) {
  ColumnVector cv(DataType::kString);
  std::vector<std::string> expected;
  for (int round = 0; round < 4; ++round) {
    // Interleave Reserve with appends whose sizes force repeated pool
    // reallocation; earlier cells must keep reading back exactly.
    cv.Reserve(100);
    for (int i = 0; i < 100; ++i) {
      std::string s = "r" + std::to_string(round) + ":" + std::to_string(i) +
                      std::string(static_cast<size_t>(i % 37), 'p');
      expected.push_back(s);
      ASSERT_TRUE(cv.Append(Value::String(std::move(s))));
    }
    for (size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(cv.StringAt(i), expected[i]) << "cell " << i << " after round "
                                             << round;
    }
  }
}

TEST(ShardRoutingTest, EqualComparingKeysCoLocateAndNullsPoolInShardZero) {
  for (size_t shards : {1u, 4u, 16u}) {
    EXPECT_EQ(ShardOf(Value::Null(), shards), 0u);
    // 3 and 3.0 compare equal (Value::Compare widening) and must co-locate
    // so an equality join never needs to look at two shards for one key.
    EXPECT_EQ(ShardOf(Value::Int64(3), shards),
              ShardOf(Value::Double(3.0), shards));
    // The two zeros compare equal; Value::Hash normalizes -0.0.
    EXPECT_EQ(ShardOf(Value::Double(0.0), shards),
              ShardOf(Value::Double(-0.0), shards));
    EXPECT_LT(ShardOf(Value::String("abc"), shards), shards);
  }
}

std::unique_ptr<Table> MakeMixedTable(size_t shard_count, size_t rows) {
  TableSchema schema("t", {{"k", DataType::kInt64, /*nullable=*/true},
                           {"d", DataType::kDouble, true},
                           {"s", DataType::kString, true}});
  auto table = std::make_unique<Table>(std::move(schema), shard_count);
  std::mt19937 rng(7u + static_cast<uint32_t>(shard_count));
  for (size_t r = 0; r < rows; ++r) {
    Tuple row{
        rng() % 5 == 0 ? Value::Null()
                       : Value::Int64(static_cast<int64_t>(rng() % 10)),
        rng() % 4 == 0
            ? Value::Null()
            : (rng() % 2 ? Value::Int64(static_cast<int64_t>(rng() % 7))
                         : Value::Double(static_cast<double>(rng() % 7) - 0.5)),
        rng() % 3 == 0 ? Value::Null()
                       : Value::String("s" + std::to_string(rng() % 9)),
    };
    EXPECT_TRUE(table->Insert(std::move(row)).ok());
  }
  return table;
}

TEST(ShardedTableTest, GlobalIdsAscendAndMaterializationIsExact) {
  for (size_t shard_count : {1u, 4u, 16u}) {
    auto table = MakeMixedTable(shard_count, 300);
    ASSERT_EQ(table->shard_count(), shard_count);
    EXPECT_TRUE(table->columnar_exact());

    std::set<uint64_t> seen;
    size_t total = 0;
    for (size_t s = 0; s < shard_count; ++s) {
      const ColumnarShard& shard = table->shard(s);
      total += shard.size();
      uint64_t prev = 0;
      bool first = true;
      for (size_t pos = 0; pos < shard.size(); ++pos) {
        const uint64_t gid = shard.global_id(pos);
        if (!first) {
          EXPECT_GT(gid, prev) << "shard " << s << " pos " << pos;
        }
        first = false;
        prev = gid;
        EXPECT_TRUE(seen.insert(gid).second) << "duplicate global id " << gid;
        // Exact per-cell and whole-tuple round-trips vs the row store.
        const Tuple& row = table->rows()[gid];
        const Tuple mat = shard.MaterializeTuple(pos);
        ASSERT_EQ(mat.size(), row.size());
        for (size_t c = 0; c < row.size(); ++c) {
          EXPECT_TRUE(ValueIdentical(shard.ValueAt(c, pos), row.values()[c]))
              << "shard " << s << " pos " << pos << " col " << c;
          EXPECT_TRUE(ValueIdentical(mat.values()[c], row.values()[c]));
        }
      }
    }
    EXPECT_EQ(total, table->num_rows());
    EXPECT_EQ(seen.size(), table->num_rows());
    // row_loc is the inverse mapping.
    for (size_t g = 0; g < table->num_rows(); ++g) {
      const Table::RowLoc loc = table->row_loc(g);
      ASSERT_LT(loc.shard, shard_count);
      ASSERT_LT(loc.pos, table->shard(loc.shard).size());
      EXPECT_EQ(table->shard(loc.shard).global_id(loc.pos), g);
    }
  }
}

TEST(ShardedTableTest, VersionAndDeltaSemanticsAreShardCountInvariant) {
  for (size_t shard_count : {1u, 4u, 16u}) {
    auto table = MakeMixedTable(shard_count, 50);
    const uint64_t v0 = table->version();
    EXPECT_EQ(v0, 50u);  // one bump per committed row, any layout
    EXPECT_EQ(table->RowsAppendedSince(v0), 0u);

    // Every commit path (validated and unchecked) must move the version,
    // so a cache key snapshotted before the write can only go stale —
    // never wrongly fresh.
    Tuple copy = table->rows()[0];
    table->InsertUnchecked(std::move(copy));
    EXPECT_EQ(table->version(), v0 + 1);
    EXPECT_EQ(table->RowsAppendedSince(v0), 1u);
    ASSERT_TRUE(table
                    ->Insert(Tuple{Value::Int64(1), Value::Double(2.0),
                                   Value::String("x")})
                    .ok());
    EXPECT_EQ(table->version(), v0 + 2);
    EXPECT_EQ(table->RowsAppendedSince(v0), 2u);
    // A snapshot at or past the current high-water mark reads an empty
    // delta; one from any earlier point reads every later row.
    EXPECT_EQ(table->RowsAppendedSince(table->version()), 0u);
    EXPECT_EQ(table->RowsAppendedSince(0), table->num_rows());
  }
}

TEST(ShardedTableTest, UnrepresentableRowDropsToRowStoreForGood) {
  TableSchema schema("t", {{"a", DataType::kInt64, /*nullable=*/true},
                           {"b", DataType::kString, true}});
  Database db;
  db.set_default_shard_count(4);
  ASSERT_TRUE(db.CreateTable(std::move(schema)).ok());
  Table* table = *db.GetTable("t");
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table
                    ->Insert(Tuple{Value::Int64(i % 5),
                                   Value::String("v" + std::to_string(i))})
                    .ok());
  }
  ASSERT_TRUE(table->columnar_exact());

  // A wrong-arity row and a type-smuggled row, both only possible through
  // the unchecked path. Each must clear columnar_exact permanently while
  // keeping shard positions aligned (placeholder NULL rows).
  table->InsertUnchecked(Tuple{Value::Int64(99)});  // arity 1 != 2
  EXPECT_FALSE(table->columnar_exact());
  table->InsertUnchecked(Tuple{Value::String("not an int"), Value::Int64(7)});
  EXPECT_FALSE(table->columnar_exact());
  size_t total = 0;
  for (size_t s = 0; s < table->shard_count(); ++s) {
    total += table->shard(s).size();
  }
  EXPECT_EQ(total, table->num_rows());
  for (size_t g = 0; g < table->num_rows(); ++g) {
    const Table::RowLoc loc = table->row_loc(g);
    EXPECT_EQ(table->shard(loc.shard).global_id(loc.pos), g);
  }

  // Queries (scan + filter + projection) must be served correctly from
  // the authoritative row store now that the columnar paths stepped aside.
  engine::QueryExecutor executor(&db);
  auto result = executor.ExecuteSql("SELECT t.a FROM t WHERE t.a = 3");
  ASSERT_TRUE(result.ok()) << result.status();
  size_t expected = 0;
  for (const Tuple& row : table->rows()) {
    if (row.size() == 2 && row.values()[0].is_int64() &&
        row.values()[0].AsInt64() == 3) {
      ++expected;
    }
  }
  EXPECT_EQ(result->rows.size(), expected);
  EXPECT_GT(expected, 0u);
}

}  // namespace
}  // namespace silkroute

// ---------------------------------------------------------------------------
// End to end: seeded mutation-interleaved republish over a 16-shard
// database (mirror of result_cache_test.cc's harness, storage-layout
// edition: every publish reads through the columnar scan/join paths).
// ---------------------------------------------------------------------------

namespace silkroute::core {
namespace {

using testutil::MakeTinyTpch;

TEST(ColumnarE2ETest, MutationInterleavedRepublishStaysByteIdentical) {
  auto db = MakeTinyTpch(0.001, /*shard_count=*/16);
  Publisher publisher(db.get());

  engine::ResultCache cache(engine::ResultCache::Options{8 << 20, 4, nullptr});
  PublishOptions base;
  base.strategy = PlanStrategy::kFullyPartitioned;
  base.document_element = "suppliers";
  PublishOptions cached = base;
  cached.result_cache = &cache;

  auto publish = [&](const PublishOptions& opt) {
    std::ostringstream out;
    auto result = publisher.Publish(Query1Rxl(), opt, &out);
    EXPECT_TRUE(result.ok()) << result.status();
    return out.str();
  };

  std::vector<std::string> tables = db->catalog().TableNames();
  ASSERT_FALSE(tables.empty());
  std::mt19937 rng(0xC01A7);
  size_t mutations = 0;
  for (int i = 0; i < 25; ++i) {
    if (rng() % 2 == 0) {
      const std::string& victim = tables[rng() % tables.size()];
      auto table = db->GetTable(victim);
      ASSERT_TRUE(table.ok());
      if ((*table)->num_rows() > 0) {
        Tuple row = (*table)->rows()[rng() % (*table)->num_rows()];
        (*table)->InsertUnchecked(std::move(row));
        ++mutations;
      }
    }
    const std::string warm = publish(cached);
    const std::string reference = publish(base);
    ASSERT_EQ(warm, reference) << "iteration " << i;
  }
  ASSERT_GT(mutations, 0u);
  auto stats = cache.stats();
  EXPECT_GT(stats.hits, 0u);
}

}  // namespace
}  // namespace silkroute::core
