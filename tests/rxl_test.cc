#include <gtest/gtest.h>

#include "rxl/parser.h"
#include "silkroute/queries.h"

namespace silkroute::rxl {
namespace {

RxlQuery MustParse(std::string_view text) {
  auto q = ParseRxl(text);
  EXPECT_TRUE(q.ok()) << q.status();
  return q.ok() ? std::move(q).value() : RxlQuery{};
}

TEST(RxlParserTest, MinimalQuery) {
  RxlQuery q = MustParse("from T $t construct <e>$t.x</e>");
  ASSERT_EQ(q.root.from.size(), 1u);
  EXPECT_EQ(q.root.from[0].table, "T");
  EXPECT_EQ(q.root.from[0].var, "t");
  ASSERT_EQ(q.root.construct.size(), 1u);
  ASSERT_EQ(q.root.construct[0].kind, Content::Kind::kElement);
  const Element& e = *q.root.construct[0].element;
  EXPECT_EQ(e.tag, "e");
  ASSERT_EQ(e.content.size(), 1u);
  EXPECT_EQ(e.content[0].kind, Content::Kind::kFieldRef);
  EXPECT_EQ(e.content[0].field.ToString(), "$t.x");
}

TEST(RxlParserTest, MultipleBindings) {
  RxlQuery q = MustParse("from A $a, B $b construct <e/>");
  ASSERT_EQ(q.root.from.size(), 2u);
  EXPECT_EQ(q.root.from[1].var, "b");
}

TEST(RxlParserTest, WhereClauseCommaSeparated) {
  RxlQuery q = MustParse(
      "from A $a, B $b where $a.x = $b.y, $a.z <> 3 construct <e/>");
  ASSERT_EQ(q.root.where.size(), 2u);
  EXPECT_TRUE(q.root.where[0].IsFieldJoin());
  EXPECT_EQ(q.root.where[1].op, CondOp::kNe);
  EXPECT_EQ(q.root.where[1].rhs.kind, Operand::Kind::kLiteral);
  EXPECT_EQ(q.root.where[1].rhs.literal.AsInt64(), 3);
}

TEST(RxlParserTest, AllComparisonOperators) {
  RxlQuery q = MustParse(
      "from A $a where $a.a = 1, $a.b <> 2, $a.c < 3, $a.d <= 4, "
      "$a.e > 5, $a.f >= 6 construct <e/>");
  ASSERT_EQ(q.root.where.size(), 6u);
  EXPECT_EQ(q.root.where[0].op, CondOp::kEq);
  EXPECT_EQ(q.root.where[1].op, CondOp::kNe);
  EXPECT_EQ(q.root.where[2].op, CondOp::kLt);
  EXPECT_EQ(q.root.where[3].op, CondOp::kLe);
  EXPECT_EQ(q.root.where[4].op, CondOp::kGt);
  EXPECT_EQ(q.root.where[5].op, CondOp::kGe);
}

TEST(RxlParserTest, LiteralKinds) {
  RxlQuery q = MustParse(
      "from A $a where $a.s = 'it''s', $a.d = 2.5, $a.n = -7 construct <e/>");
  EXPECT_EQ(q.root.where[0].rhs.literal.AsString(), "it's");
  EXPECT_DOUBLE_EQ(q.root.where[1].rhs.literal.AsDouble(), 2.5);
  EXPECT_EQ(q.root.where[2].rhs.literal.AsInt64(), -7);
}

TEST(RxlParserTest, NestedBlocks) {
  RxlQuery q = MustParse(R"(
    from A $a construct
    <outer>
      <leaf>$a.x</leaf>
      { from B $b where $a.k = $b.k construct <inner>$b.y</inner> }
    </outer>
  )");
  const Element& outer = *q.root.construct[0].element;
  ASSERT_EQ(outer.content.size(), 2u);
  EXPECT_EQ(outer.content[0].kind, Content::Kind::kElement);
  ASSERT_EQ(outer.content[1].kind, Content::Kind::kBlock);
  const Block& inner = *outer.content[1].block;
  EXPECT_EQ(inner.from.size(), 1u);
  EXPECT_EQ(inner.where.size(), 1u);
}

TEST(RxlParserTest, ParallelBlocksExpressUnion) {
  RxlQuery q = MustParse(R"(
    from A $a construct
    <e>
      { from B $b construct <x/> }
      { from C $c construct <y/> }
    </e>
  )");
  const Element& e = *q.root.construct[0].element;
  EXPECT_EQ(e.content.size(), 2u);
  EXPECT_EQ(e.content[0].kind, Content::Kind::kBlock);
  EXPECT_EQ(e.content[1].kind, Content::Kind::kBlock);
}

TEST(RxlParserTest, BlockConstructingSiblingAfterElement) {
  // The Fig. 3 pattern: a block constructs an element and a further nested
  // block whose elements are siblings.
  RxlQuery q = MustParse(R"(
    from O $o construct
    <order>
      { from Customer $c where $o.ck = $c.ck
        construct <customer>$c.name</customer>
        { from Nation $n where $c.nk = $n.nk
          construct <nation>$n.name</nation> } }
    </order>
  )");
  const Element& order = *q.root.construct[0].element;
  ASSERT_EQ(order.content.size(), 1u);
  const Block& cust_block = *order.content[0].block;
  ASSERT_EQ(cust_block.construct.size(), 2u);
  EXPECT_EQ(cust_block.construct[0].kind, Content::Kind::kElement);
  EXPECT_EQ(cust_block.construct[1].kind, Content::Kind::kBlock);
}

TEST(RxlParserTest, ExplicitSkolemTerm) {
  RxlQuery q = MustParse(
      "from A $a construct <e ID=F1($a.x, $a.y)>$a.z</e>");
  const Element& e = *q.root.construct[0].element;
  ASSERT_TRUE(e.skolem.has_value());
  EXPECT_EQ(e.skolem->function, "F1");
  ASSERT_EQ(e.skolem->args.size(), 2u);
  EXPECT_EQ(e.skolem->args[1].ToString(), "$a.y");
}

TEST(RxlParserTest, SelfClosingElement) {
  RxlQuery q = MustParse("from A $a construct <e><empty/></e>");
  const Element& e = *q.root.construct[0].element;
  ASSERT_EQ(e.content.size(), 1u);
  EXPECT_TRUE(e.content[0].element->content.empty());
}

TEST(RxlParserTest, LiteralTextContent) {
  RxlQuery q = MustParse("from A $a construct <e>hello $a.x world</e>");
  const Element& e = *q.root.construct[0].element;
  ASSERT_EQ(e.content.size(), 3u);
  EXPECT_EQ(e.content[0].kind, Content::Kind::kText);
  EXPECT_EQ(e.content[1].kind, Content::Kind::kFieldRef);
  EXPECT_EQ(e.content[2].kind, Content::Kind::kText);
}

TEST(RxlParserTest, LineComments) {
  RxlQuery q = MustParse(
      "-- top comment\nfrom A $a -- binding\nconstruct <e/>");
  EXPECT_EQ(q.root.from.size(), 1u);
}

TEST(RxlParserTest, ErrorCases) {
  EXPECT_FALSE(ParseRxl("from A $a").ok());                 // no construct
  EXPECT_FALSE(ParseRxl("from A construct <e/>").ok());     // missing $var
  EXPECT_FALSE(ParseRxl("from A $a construct <e>").ok());   // unterminated
  EXPECT_FALSE(ParseRxl("from A $a construct <e></f>").ok());  // mismatch
  EXPECT_FALSE(ParseRxl("from A $a where $a.x construct <e/>").ok());
  EXPECT_FALSE(ParseRxl("from A $a construct <e/> trailing").ok());
  EXPECT_FALSE(
      ParseRxl("from A $a construct <e>{ from B $b construct }</e>").ok());
}

TEST(RxlParserTest, PaperQueriesParse) {
  RxlQuery q1 = MustParse(core::Query1Rxl());
  EXPECT_EQ(q1.root.from.size(), 1u);
  RxlQuery q2 = MustParse(core::Query2Rxl());
  EXPECT_EQ(q2.root.from.size(), 1u);
  RxlQuery frag = MustParse(core::QueryFragmentRxl());
  EXPECT_EQ(frag.root.construct.size(), 1u);
}

TEST(RxlParserTest, ToStringRoundTrips) {
  RxlQuery q1 = MustParse(core::Query1Rxl());
  std::string printed = q1.ToString();
  auto q2 = ParseRxl(printed);
  ASSERT_TRUE(q2.ok()) << printed << "\n" << q2.status();
  EXPECT_EQ(printed, q2->ToString());
}

}  // namespace
}  // namespace silkroute::rxl
