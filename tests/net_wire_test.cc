// Wire protocol codec tests: byte-exact header layout, round-trips for
// every payload kind, exhaustive prefix truncation, and hostile inputs
// (forged magic/version/type/flags/lengths) — all must yield
// kInvalidArgument, never UB or a partial value.
#include <gtest/gtest.h>

#include "net/wire.h"

namespace silkroute::net {
namespace {

FrameHeader MakeHeader() {
  FrameHeader header;
  header.type = FrameType::kChunk;
  header.request_id = 0x1122334455667788ull;
  header.budget_us = 2'500'000;
  header.payload_len = 64;
  header.payload_hash = 0xA0A1A2A3A4A5A6A7ull;
  return header;
}

TEST(NetWireTest, HeaderLayoutIsByteExact) {
  std::string bytes;
  EncodeFrameHeader(MakeHeader(), &bytes);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize);
  // Magic "SRK1" little-endian: 0x53524B31 -> 31 4B 52 53.
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x31);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x4B);
  EXPECT_EQ(static_cast<uint8_t>(bytes[2]), 0x52);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x53);
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), kWireVersion);
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]),
            static_cast<uint8_t>(FrameType::kChunk));
  EXPECT_EQ(static_cast<uint8_t>(bytes[6]), 0);  // flags
  EXPECT_EQ(static_cast<uint8_t>(bytes[7]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), 0x88);   // request_id LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[15]), 0x11);
  EXPECT_EQ(static_cast<uint8_t>(bytes[24]), 64);    // payload_len LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[28]), 0xA7);  // payload_hash LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[35]), 0xA0);
}

TEST(NetWireTest, HeaderRoundTrips) {
  std::string bytes;
  EncodeFrameHeader(MakeHeader(), &bytes);
  auto back = DecodeFrameHeader(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->version, kWireVersion);
  EXPECT_EQ(back->type, FrameType::kChunk);
  EXPECT_EQ(back->flags, 0);
  EXPECT_EQ(back->request_id, 0x1122334455667788ull);
  EXPECT_EQ(back->budget_us, 2'500'000u);
  EXPECT_EQ(back->payload_len, 64u);
  EXPECT_EQ(back->payload_hash, 0xA0A1A2A3A4A5A6A7ull);
}

TEST(NetWireTest, FrameHashCoversHeaderAndPayload) {
  FrameHeader header = MakeHeader();
  uint64_t base = FrameHash(header, "payload");
  EXPECT_EQ(FrameHash(header, "payload"), base);  // deterministic
  // Any single change to the payload or a covered header field moves it.
  EXPECT_NE(FrameHash(header, "paxload"), base);
  EXPECT_NE(FrameHash(header, "payloa"), base);
  FrameHeader other = header;
  other.request_id ^= 1;
  EXPECT_NE(FrameHash(other, "payload"), base);
  other = header;
  other.budget_us ^= 1;
  EXPECT_NE(FrameHash(other, "payload"), base);
  other = header;
  other.type = FrameType::kEnd;
  EXPECT_NE(FrameHash(other, "payload"), base);
  // The hash field itself is not covered (it cannot hash itself).
  other = header;
  other.payload_hash ^= 0xFFFF;
  EXPECT_EQ(FrameHash(other, "payload"), base);
}

TEST(NetWireTest, EveryHeaderTruncationRejected) {
  std::string bytes;
  EncodeFrameHeader(MakeHeader(), &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = DecodeFrameHeader(bytes.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << cut;
  }
}

TEST(NetWireTest, HostileHeaderFieldsRejected) {
  std::string good;
  EncodeFrameHeader(MakeHeader(), &good);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeFrameHeader(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_version = good;
  bad_version[4] = 9;
  EXPECT_EQ(DecodeFrameHeader(bad_version).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_type = good;
  bad_type[5] = 0;
  EXPECT_EQ(DecodeFrameHeader(bad_type).status().code(),
            StatusCode::kInvalidArgument);
  bad_type[5] = 5;
  EXPECT_EQ(DecodeFrameHeader(bad_type).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_flags = good;
  bad_flags[6] = 1;
  EXPECT_EQ(DecodeFrameHeader(bad_flags).status().code(),
            StatusCode::kInvalidArgument);

  // An oversized length prefix — the torn/garbage-length case — must be
  // rejected before any allocation happens.
  std::string bad_len = good;
  bad_len[24] = '\xFF';
  bad_len[25] = '\xFF';
  bad_len[26] = '\xFF';
  bad_len[27] = '\xFF';
  EXPECT_EQ(DecodeFrameHeader(bad_len).status().code(),
            StatusCode::kInvalidArgument);

  // The same length under a tightened per-call cap.
  std::string capped = good;  // payload_len = 64
  EXPECT_EQ(DecodeFrameHeader(capped, /*max_payload=*/16).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(DecodeFrameHeader(capped, /*max_payload=*/64).ok());
}

TEST(NetWireTest, RequestPayloadRoundTrips) {
  std::string payload;
  EncodeRequestPayload("select s.suppkey from Supplier s", &payload);
  auto back = DecodeRequestPayload(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "select s.suppkey from Supplier s");

  // Trailing junk after the declared SQL is a framing bug — rejected.
  payload.push_back('x');
  EXPECT_EQ(DecodeRequestPayload(payload).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, ErrorPayloadRoundTripsEveryCode) {
  for (auto code : {StatusCode::kTimeout, StatusCode::kUnavailable,
                    StatusCode::kInvalidArgument, StatusCode::kInternal}) {
    std::string payload;
    EncodeErrorPayload(Status(code, "the message"), &payload);
    Status carried = Status::OK();
    ASSERT_TRUE(DecodeErrorPayload(payload, &carried).ok());
    EXPECT_EQ(carried.code(), code);
    EXPECT_EQ(carried.message(), "the message");
  }
}

TEST(NetWireTest, HostileErrorPayloadRejected) {
  Status carried = Status::OK();
  // Status code 0 (OK) or far out of range cannot be carried as an error.
  std::string zero("\0\0\0\0\0\0\0\0", 8);
  EXPECT_EQ(DecodeErrorPayload(zero, &carried).code(),
            StatusCode::kInvalidArgument);
  std::string huge("\xFF\xFF\xFF\xFF\0\0\0\0", 8);
  EXPECT_EQ(DecodeErrorPayload(huge, &carried).code(),
            StatusCode::kInvalidArgument);
  // Message length prefix longer than the payload.
  std::string torn;
  EncodeErrorPayload(Status::Timeout("abcdef"), &torn);
  torn.resize(torn.size() - 3);
  EXPECT_EQ(DecodeErrorPayload(torn, &carried).code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, EndPayloadRoundTripsAndRejectsWrongSize) {
  std::string payload;
  EncodeEndPayload({123, 45678}, &payload);
  auto back = DecodeEndPayload(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows, 123u);
  EXPECT_EQ(back->relation_bytes, 45678u);
  EXPECT_EQ(DecodeEndPayload(payload.substr(0, 15)).status().code(),
            StatusCode::kInvalidArgument);
  payload.push_back('\0');
  EXPECT_EQ(DecodeEndPayload(payload).status().code(),
            StatusCode::kInvalidArgument);
}

engine::Relation MakeRelation() {
  engine::Relation relation;
  relation.schema.Add({"s", "suppkey"});
  relation.schema.Add({"", "name"});
  relation.rows.push_back(Tuple{Value::Int64(1),
                                        Value::String("alpha")});
  relation.rows.push_back(Tuple{Value::Int64(2),
                                        Value::Null()});
  relation.rows.push_back(Tuple{Value::Int64(3),
                                        Value::String("")});
  return relation;
}

TEST(NetWireTest, RelationRoundTrips) {
  engine::Relation relation = MakeRelation();
  std::string bytes;
  SerializeRelation(relation, &bytes);
  auto back = DeserializeRelation(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->schema.size(), relation.schema.size());
  EXPECT_EQ(back->schema.column(0).qualifier, "s");
  EXPECT_EQ(back->schema.column(0).name, "suppkey");
  EXPECT_EQ(back->schema.column(1).name, "name");
  ASSERT_EQ(back->rows.size(), relation.rows.size());
  for (size_t i = 0; i < relation.rows.size(); ++i) {
    EXPECT_EQ(back->rows[i], relation.rows[i]) << i;
  }
}

TEST(NetWireTest, EmptyRelationRoundTrips) {
  engine::Relation relation;
  std::string bytes;
  SerializeRelation(relation, &bytes);
  auto back = DeserializeRelation(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->schema.size(), 0u);
  EXPECT_TRUE(back->rows.empty());
}

TEST(NetWireTest, EveryRelationTruncationRejected) {
  std::string bytes;
  SerializeRelation(MakeRelation(), &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = DeserializeRelation(bytes.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << cut;
  }
  // And trailing bytes after the last row are rejected too.
  bytes.push_back('\0');
  EXPECT_EQ(DeserializeRelation(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, HostileRelationCountsRejected) {
  // Forged column count with nothing behind it.
  std::string cols("\xFF\xFF\xFF\x7F", 4);
  EXPECT_EQ(DeserializeRelation(cols).status().code(),
            StatusCode::kInvalidArgument);
  // Valid empty schema, forged row count.
  std::string rows("\0\0\0\0\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x7F", 12);
  EXPECT_EQ(DeserializeRelation(rows).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, RowColumnCountMismatchRejected) {
  // A row whose value count disagrees with the schema is a protocol
  // violation even when the bytes decode cleanly as a tuple.
  engine::Relation relation = MakeRelation();
  relation.rows[1] = Tuple{Value::Int64(9)};
  std::string bytes;
  SerializeRelation(relation, &bytes);
  EXPECT_EQ(DeserializeRelation(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace silkroute::net
