// Wire protocol codec tests: byte-exact header layout, round-trips for
// every payload kind, exhaustive prefix truncation, and hostile inputs
// (forged magic/version/type/flags/lengths) — all must yield
// kInvalidArgument, never UB or a partial value.
#include <gtest/gtest.h>

#include "net/wire.h"

namespace silkroute::net {
namespace {

FrameHeader MakeHeader() {
  FrameHeader header;
  header.type = FrameType::kChunk;
  header.request_id = 0x1122334455667788ull;
  header.budget_us = 2'500'000;
  header.payload_len = 64;
  header.payload_hash = 0xA0A1A2A3A4A5A6A7ull;
  return header;
}

TEST(NetWireTest, HeaderLayoutIsByteExact) {
  std::string bytes;
  EncodeFrameHeader(MakeHeader(), &bytes);
  ASSERT_EQ(bytes.size(), kFrameHeaderSize);
  // Magic "SRK1" little-endian: 0x53524B31 -> 31 4B 52 53.
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 0x31);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0x4B);
  EXPECT_EQ(static_cast<uint8_t>(bytes[2]), 0x52);
  EXPECT_EQ(static_cast<uint8_t>(bytes[3]), 0x53);
  // Plain frames default to the legacy version (v2 is opt-in per frame).
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), kWireVersionLegacy);
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]),
            static_cast<uint8_t>(FrameType::kChunk));
  EXPECT_EQ(static_cast<uint8_t>(bytes[6]), 0);  // flags
  EXPECT_EQ(static_cast<uint8_t>(bytes[7]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[8]), 0x88);   // request_id LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[15]), 0x11);
  EXPECT_EQ(static_cast<uint8_t>(bytes[24]), 64);    // payload_len LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[28]), 0xA7);  // payload_hash LE
  EXPECT_EQ(static_cast<uint8_t>(bytes[35]), 0xA0);
}

TEST(NetWireTest, HeaderRoundTrips) {
  std::string bytes;
  EncodeFrameHeader(MakeHeader(), &bytes);
  auto back = DecodeFrameHeader(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->version, kWireVersionLegacy);
  EXPECT_EQ(back->type, FrameType::kChunk);
  EXPECT_EQ(back->flags, 0);
  EXPECT_EQ(back->request_id, 0x1122334455667788ull);
  EXPECT_EQ(back->budget_us, 2'500'000u);
  EXPECT_EQ(back->payload_len, 64u);
  EXPECT_EQ(back->payload_hash, 0xA0A1A2A3A4A5A6A7ull);
}

TEST(NetWireTest, FrameHashCoversHeaderAndPayload) {
  FrameHeader header = MakeHeader();
  uint64_t base = FrameHash(header, "payload");
  EXPECT_EQ(FrameHash(header, "payload"), base);  // deterministic
  // Any single change to the payload or a covered header field moves it.
  EXPECT_NE(FrameHash(header, "paxload"), base);
  EXPECT_NE(FrameHash(header, "payloa"), base);
  FrameHeader other = header;
  other.request_id ^= 1;
  EXPECT_NE(FrameHash(other, "payload"), base);
  other = header;
  other.budget_us ^= 1;
  EXPECT_NE(FrameHash(other, "payload"), base);
  other = header;
  other.type = FrameType::kEnd;
  EXPECT_NE(FrameHash(other, "payload"), base);
  // The hash field itself is not covered (it cannot hash itself).
  other = header;
  other.payload_hash ^= 0xFFFF;
  EXPECT_EQ(FrameHash(other, "payload"), base);
}

TEST(NetWireTest, EveryHeaderTruncationRejected) {
  std::string bytes;
  EncodeFrameHeader(MakeHeader(), &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = DecodeFrameHeader(bytes.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << cut;
  }
}

TEST(NetWireTest, HostileHeaderFieldsRejected) {
  std::string good;
  EncodeFrameHeader(MakeHeader(), &good);

  std::string bad_magic = good;
  bad_magic[0] = 'X';
  EXPECT_EQ(DecodeFrameHeader(bad_magic).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_version = good;
  bad_version[4] = 9;
  EXPECT_EQ(DecodeFrameHeader(bad_version).status().code(),
            StatusCode::kInvalidArgument);

  std::string bad_type = good;
  bad_type[5] = 0;
  EXPECT_EQ(DecodeFrameHeader(bad_type).status().code(),
            StatusCode::kInvalidArgument);
  // kStats (5) is a v2-only type; on a legacy header it is hostile.
  bad_type[5] = 5;
  EXPECT_EQ(DecodeFrameHeader(bad_type).status().code(),
            StatusCode::kInvalidArgument);

  // All flags are reserved on v1 — including kFlagTrace.
  std::string bad_flags = good;
  bad_flags[6] = 1;
  EXPECT_EQ(DecodeFrameHeader(bad_flags).status().code(),
            StatusCode::kInvalidArgument);

  // An oversized length prefix — the torn/garbage-length case — must be
  // rejected before any allocation happens.
  std::string bad_len = good;
  bad_len[24] = '\xFF';
  bad_len[25] = '\xFF';
  bad_len[26] = '\xFF';
  bad_len[27] = '\xFF';
  EXPECT_EQ(DecodeFrameHeader(bad_len).status().code(),
            StatusCode::kInvalidArgument);

  // The same length under a tightened per-call cap.
  std::string capped = good;  // payload_len = 64
  EXPECT_EQ(DecodeFrameHeader(capped, /*max_payload=*/16).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(DecodeFrameHeader(capped, /*max_payload=*/64).ok());
}

TEST(NetWireTest, RequestPayloadRoundTrips) {
  std::string payload;
  EncodeRequestPayload("select s.suppkey from Supplier s", &payload);
  auto back = DecodeRequestPayload(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, "select s.suppkey from Supplier s");

  // Trailing junk after the declared SQL is a framing bug — rejected.
  payload.push_back('x');
  EXPECT_EQ(DecodeRequestPayload(payload).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, ErrorPayloadRoundTripsEveryCode) {
  for (auto code : {StatusCode::kTimeout, StatusCode::kUnavailable,
                    StatusCode::kInvalidArgument, StatusCode::kInternal}) {
    std::string payload;
    EncodeErrorPayload(Status(code, "the message"), &payload);
    Status carried = Status::OK();
    ASSERT_TRUE(DecodeErrorPayload(payload, &carried).ok());
    EXPECT_EQ(carried.code(), code);
    EXPECT_EQ(carried.message(), "the message");
  }
}

TEST(NetWireTest, HostileErrorPayloadRejected) {
  Status carried = Status::OK();
  // Status code 0 (OK) or far out of range cannot be carried as an error.
  std::string zero("\0\0\0\0\0\0\0\0", 8);
  EXPECT_EQ(DecodeErrorPayload(zero, &carried).code(),
            StatusCode::kInvalidArgument);
  std::string huge("\xFF\xFF\xFF\xFF\0\0\0\0", 8);
  EXPECT_EQ(DecodeErrorPayload(huge, &carried).code(),
            StatusCode::kInvalidArgument);
  // Message length prefix longer than the payload.
  std::string torn;
  EncodeErrorPayload(Status::Timeout("abcdef"), &torn);
  torn.resize(torn.size() - 3);
  EXPECT_EQ(DecodeErrorPayload(torn, &carried).code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, EndPayloadRoundTripsAndRejectsWrongSize) {
  std::string payload;
  EncodeEndPayload({123, 45678}, &payload);
  auto back = DecodeEndPayload(payload);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows, 123u);
  EXPECT_EQ(back->relation_bytes, 45678u);
  EXPECT_EQ(DecodeEndPayload(payload.substr(0, 15)).status().code(),
            StatusCode::kInvalidArgument);
  payload.push_back('\0');
  EXPECT_EQ(DecodeEndPayload(payload).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Wire v2: version gating, trace context, and trace blocks (DESIGN.md §14).

TEST(NetWireV2Test, V2HeaderCarriesTraceFlagAndStatsType) {
  FrameHeader header = MakeHeader();
  header.version = kWireVersion;
  header.flags = kFlagTrace;
  std::string bytes;
  EncodeFrameHeader(header, &bytes);
  auto back = DecodeFrameHeader(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->version, kWireVersion);
  EXPECT_EQ(back->flags, kFlagTrace);

  // kStats decodes only under v2.
  FrameHeader stats = MakeHeader();
  stats.version = kWireVersion;
  stats.type = FrameType::kStats;
  stats.payload_len = 0;
  bytes.clear();
  EncodeFrameHeader(stats, &bytes);
  auto stats_back = DecodeFrameHeader(bytes);
  ASSERT_TRUE(stats_back.ok()) << stats_back.status();
  EXPECT_EQ(stats_back->type, FrameType::kStats);
}

TEST(NetWireV2Test, V2ReservedFlagsStillRejected) {
  // v2 defines exactly kFlagTrace; every other bit stays reserved.
  FrameHeader header = MakeHeader();
  header.version = kWireVersion;
  header.flags = kFlagTrace | 0x2;
  std::string bytes;
  EncodeFrameHeader(header, &bytes);
  EXPECT_EQ(DecodeFrameHeader(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireV2Test, LegacyHeaderRejectsTraceFlagAndStats) {
  // What a pre-v2 peer would see from a confused sender: trace flag or
  // kStats on a v1 header. Both die at decode, before any execution.
  FrameHeader traced = MakeHeader();
  traced.version = kWireVersionLegacy;
  traced.flags = kFlagTrace;
  std::string bytes;
  EncodeFrameHeader(traced, &bytes);
  EXPECT_EQ(DecodeFrameHeader(bytes).status().code(),
            StatusCode::kInvalidArgument);

  FrameHeader stats = MakeHeader();
  stats.version = kWireVersionLegacy;
  stats.type = FrameType::kStats;
  bytes.clear();
  EncodeFrameHeader(stats, &bytes);
  EXPECT_EQ(DecodeFrameHeader(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireV2Test, TracedRequestPayloadRoundTrips) {
  WireTraceContext trace;
  trace.trace_id = "7";
  trace.parent_span_id = "7.2.1.3";
  std::string payload;
  EncodeTracedRequestPayload("select * from Supplier", trace, &payload);
  auto back = DecodeTracedRequestPayload(payload);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->sql, "select * from Supplier");
  EXPECT_EQ(back->trace.trace_id, "7");
  EXPECT_EQ(back->trace.parent_span_id, "7.2.1.3");

  // A traced payload is not decodable as a plain request (trailing trace
  // context), and vice versa (missing trace context) — the flag and the
  // payload shape must agree.
  EXPECT_EQ(DecodeRequestPayload(payload).status().code(),
            StatusCode::kInvalidArgument);
  std::string plain;
  EncodeRequestPayload("select 1 from T", &plain);
  EXPECT_EQ(DecodeTracedRequestPayload(plain).status().code(),
            StatusCode::kInvalidArgument);

  // Trailing junk and every truncation are rejected.
  std::string junk = payload;
  junk.push_back('x');
  EXPECT_EQ(DecodeTracedRequestPayload(junk).status().code(),
            StatusCode::kInvalidArgument);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    EXPECT_EQ(DecodeTracedRequestPayload(payload.substr(0, cut))
                  .status()
                  .code(),
              StatusCode::kInvalidArgument)
        << cut;
  }
}

std::vector<WireSpan> MakeSpans() {
  WireSpan root;
  root.id = "1";
  root.name = "server";
  root.start_ns = 10;
  root.end_ns = 900;
  root.annotations.emplace_back("sql", "select * from Supplier");
  root.annotations.emplace_back("rows", "3");
  WireSpan child;
  child.id = "1.1";
  child.parent_id = "1";
  child.name = "phase:execute";
  child.start_ns = 20;
  child.end_ns = 800;
  child.annotations.emplace_back("ms", "0.780");
  return {root, child};
}

TEST(NetWireV2Test, TraceBlockRoundTrips) {
  std::string bytes;
  EncodeTraceBlock(MakeSpans(), &bytes);
  auto back = DecodeTraceBlock(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[0].id, "1");
  EXPECT_EQ((*back)[0].parent_id, "");
  EXPECT_EQ((*back)[0].name, "server");
  EXPECT_EQ((*back)[0].start_ns, 10u);
  EXPECT_EQ((*back)[0].end_ns, 900u);
  ASSERT_EQ((*back)[0].annotations.size(), 2u);
  EXPECT_EQ((*back)[0].annotations[1].second, "3");
  EXPECT_EQ((*back)[1].parent_id, "1");
  ASSERT_EQ((*back)[1].annotations.size(), 1u);
  EXPECT_EQ((*back)[1].annotations[0].first, "ms");

  // An empty block is legal (a server with tracing off mid-negotiation).
  std::string empty;
  EncodeTraceBlock({}, &empty);
  auto empty_back = DecodeTraceBlock(empty);
  ASSERT_TRUE(empty_back.ok());
  EXPECT_TRUE(empty_back->empty());
}

TEST(NetWireV2Test, EveryTraceBlockTruncationRejected) {
  std::string bytes;
  EncodeTraceBlock(MakeSpans(), &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_EQ(DecodeTraceBlock(bytes.substr(0, cut)).status().code(),
              StatusCode::kInvalidArgument)
        << cut;
  }
  bytes.push_back('\0');
  EXPECT_EQ(DecodeTraceBlock(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireV2Test, HostileTraceCountsRejected) {
  // Span count beyond the hard cap.
  std::string over("\xFF\xFF\xFF\x7F", 4);
  EXPECT_EQ(DecodeTraceBlock(over).status().code(),
            StatusCode::kInvalidArgument);
  // Span count within the cap but impossible for the bytes present —
  // rejected before any allocation sized from it.
  std::string forged("\x00\x10\x00\x00", 4);
  EXPECT_EQ(DecodeTraceBlock(forged).status().code(),
            StatusCode::kInvalidArgument);
  // Forged annotation count inside an otherwise valid single span.
  std::vector<WireSpan> spans(1);
  spans[0].id = "1";
  spans[0].name = "server";
  std::string bytes;
  EncodeTraceBlock(spans, &bytes);
  // The final u32 is the annotation count (0); forge it huge.
  bytes[bytes.size() - 1] = '\x7F';
  EXPECT_EQ(DecodeTraceBlock(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireV2Test, TracedEndPayloadRoundTrips) {
  std::string payload;
  EncodeTracedEndPayload({123, 45678}, MakeSpans(), &payload);
  auto back = DecodeTracedEndPayload(payload);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->end.rows, 123u);
  EXPECT_EQ(back->end.relation_bytes, 45678u);
  ASSERT_EQ(back->spans.size(), 2u);
  EXPECT_EQ(back->spans[1].name, "phase:execute");

  // Shorter than the 16-byte base is rejected outright.
  EXPECT_EQ(DecodeTracedEndPayload(payload.substr(0, 15)).status().code(),
            StatusCode::kInvalidArgument);
  // A plain end payload is not a traced one: the trace block (at least its
  // span count) must be present when the flag says so.
  std::string plain;
  EncodeEndPayload({1, 2}, &plain);
  EXPECT_EQ(DecodeTracedEndPayload(plain).status().code(),
            StatusCode::kInvalidArgument);
}

engine::Relation MakeRelation() {
  engine::Relation relation;
  relation.schema.Add({"s", "suppkey"});
  relation.schema.Add({"", "name"});
  relation.rows.push_back(Tuple{Value::Int64(1),
                                        Value::String("alpha")});
  relation.rows.push_back(Tuple{Value::Int64(2),
                                        Value::Null()});
  relation.rows.push_back(Tuple{Value::Int64(3),
                                        Value::String("")});
  return relation;
}

TEST(NetWireTest, RelationRoundTrips) {
  engine::Relation relation = MakeRelation();
  std::string bytes;
  SerializeRelation(relation, &bytes);
  auto back = DeserializeRelation(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->schema.size(), relation.schema.size());
  EXPECT_EQ(back->schema.column(0).qualifier, "s");
  EXPECT_EQ(back->schema.column(0).name, "suppkey");
  EXPECT_EQ(back->schema.column(1).name, "name");
  ASSERT_EQ(back->rows.size(), relation.rows.size());
  for (size_t i = 0; i < relation.rows.size(); ++i) {
    EXPECT_EQ(back->rows[i], relation.rows[i]) << i;
  }
}

TEST(NetWireTest, EmptyRelationRoundTrips) {
  engine::Relation relation;
  std::string bytes;
  SerializeRelation(relation, &bytes);
  auto back = DeserializeRelation(bytes);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->schema.size(), 0u);
  EXPECT_TRUE(back->rows.empty());
}

TEST(NetWireTest, EveryRelationTruncationRejected) {
  std::string bytes;
  SerializeRelation(MakeRelation(), &bytes);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto result = DeserializeRelation(bytes.substr(0, cut));
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << cut;
  }
  // And trailing bytes after the last row are rejected too.
  bytes.push_back('\0');
  EXPECT_EQ(DeserializeRelation(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, HostileRelationCountsRejected) {
  // Forged column count with nothing behind it.
  std::string cols("\xFF\xFF\xFF\x7F", 4);
  EXPECT_EQ(DeserializeRelation(cols).status().code(),
            StatusCode::kInvalidArgument);
  // Valid empty schema, forged row count.
  std::string rows("\0\0\0\0\xFF\xFF\xFF\xFF\xFF\xFF\xFF\x7F", 12);
  EXPECT_EQ(DeserializeRelation(rows).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NetWireTest, RowColumnCountMismatchRejected) {
  // A row whose value count disagrees with the schema is a protocol
  // violation even when the bytes decode cleanly as a tuple.
  engine::Relation relation = MakeRelation();
  relation.rows[1] = Tuple{Value::Int64(9)};
  std::string bytes;
  SerializeRelation(relation, &bytes);
  EXPECT_EQ(DeserializeRelation(bytes).status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace silkroute::net
