// Robustness tests: every parser in the system must reject arbitrary and
// mutated input with a Status — never crash, hang, or accept garbage that
// later trips an internal invariant.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "common/random.h"
#include "engine/tuple_stream.h"
#include "net/wire.h"
#include "relational/csv.h"
#include "relational/database.h"
#include "rxl/parser.h"
#include "silkroute/queries.h"
#include "silkroute/subview.h"
#include "sql/parser.h"
#include "xml/dtd.h"
#include "xml/reader.h"

namespace silkroute {
namespace {

std::string RandomBytes(Random* rng, size_t max_len) {
  std::string s;
  size_t len = static_cast<size_t>(rng->Uniform(0, static_cast<int64_t>(max_len)));
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>(rng->Uniform(1, 255)));
  }
  return s;
}

/// Characters that steer the input toward "interesting" parser states.
std::string RandomStructured(Random* rng, size_t max_len) {
  static const char kAlphabet[] =
      "<>/='\"() {},.$*|?+-#! \n\tselectfromwherecontructELEMENTabc0123";
  std::string s;
  size_t len = static_cast<size_t>(rng->Uniform(1, static_cast<int64_t>(max_len)));
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng->Uniform(0, sizeof(kAlphabet) - 2)]);
  }
  return s;
}

std::string Mutate(Random* rng, std::string_view base) {
  std::string s(base);
  int edits = static_cast<int>(rng->Uniform(1, 8));
  for (int i = 0; i < edits && !s.empty(); ++i) {
    size_t pos = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(s.size()) - 1));
    switch (rng->Uniform(0, 2)) {
      case 0:
        s[pos] = static_cast<char>(rng->Uniform(32, 126));
        break;
      case 1:
        s.erase(pos, 1);
        break;
      default:
        s.insert(pos, 1, static_cast<char>(rng->Uniform(32, 126)));
    }
  }
  return s;
}

template <typename Parser>
void FuzzParser(uint64_t seed, Parser parse, std::string_view valid_base) {
  Random rng(seed);
  for (int i = 0; i < 2000; ++i) {
    parse(RandomBytes(&rng, 200));
    parse(RandomStructured(&rng, 200));
    parse(Mutate(&rng, valid_base));
  }
}

TEST(FuzzTest, SqlParserNeverCrashes) {
  FuzzParser(101, [](const std::string& s) { (void)sql::ParseQuery(s); },
             "select 1 as L1, s.suppkey as v1_1 from Supplier s left outer "
             "join (select 2 as x from T) as Q on s.a = Q.x where s.b = 'q' "
             "order by L1 desc");
}

TEST(FuzzTest, SqlExpressionParserNeverCrashes) {
  FuzzParser(102,
             [](const std::string& s) { (void)sql::ParseExpression(s); },
             "a = 1 and (b <> 'x' or c.d <= 2.5) and e is not null");
}

TEST(FuzzTest, RxlParserNeverCrashes) {
  FuzzParser(103, [](const std::string& s) { (void)rxl::ParseRxl(s); },
             core::Query1Rxl());
}

TEST(FuzzTest, XmlReaderNeverCrashes) {
  FuzzParser(104, [](const std::string& s) { (void)xml::ParseXml(s); },
             "<?xml version=\"1.0\"?><a x=\"1\"><b>t&amp;t</b><c/></a>");
}

TEST(FuzzTest, DtdParserNeverCrashes) {
  FuzzParser(105, [](const std::string& s) { (void)xml::ParseDtd(s); },
             core::SupplierDtd());
}

TEST(FuzzTest, SubviewPathParserNeverCrashes) {
  FuzzParser(106,
             [](const std::string& s) { (void)core::ParseSubviewPath(s); },
             "/supplier[nation='FRANCE'][x=42]/part/order[orderkey=7]");
}

// --- Binary decoders (the wire protocol's hostile-input surface) ----------
// These see bytes straight off a network socket, so unlike the text parsers
// above they are fuzzed with binary corruption of *valid* encodings: every
// truncation, and seeded byte flips — the exact damage FlakyProxy inflicts.

std::string MutateBinary(Random* rng, std::string_view base) {
  std::string s(base);
  int edits = static_cast<int>(rng->Uniform(1, 8));
  for (int i = 0; i < edits && !s.empty(); ++i) {
    size_t pos = static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(s.size()) - 1));
    switch (rng->Uniform(0, 2)) {
      case 0:
        s[pos] = static_cast<char>(rng->Next() & 0xFF);
        break;
      case 1:
        s.erase(pos, 1);
        break;
      default:
        s.insert(pos, 1, static_cast<char>(rng->Next() & 0xFF));
    }
  }
  return s;
}

template <typename Decoder>
void FuzzBinaryDecoder(uint64_t seed, Decoder decode,
                       const std::string& valid) {
  // Every prefix truncation of a valid encoding must fail cleanly.
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    decode(valid.substr(0, cut));
  }
  Random rng(seed);
  for (int i = 0; i < 2000; ++i) {
    decode(RandomBytes(&rng, 256));
    decode(MutateBinary(&rng, valid));
  }
  decode(valid);  // and the pristine encoding still decodes after all that
}

TEST(FuzzTest, WireFrameHeaderDecoderNeverCrashes) {
  net::FrameHeader header;
  header.type = net::FrameType::kRequest;
  header.request_id = 7;
  header.budget_us = 1234567;
  header.payload_len = 42;
  std::string valid;
  net::EncodeFrameHeader(header, &valid);
  FuzzBinaryDecoder(
      201, [](const std::string& s) { (void)net::DecodeFrameHeader(s); },
      valid);
}

TEST(FuzzTest, WireRelationDecoderNeverCrashes) {
  engine::Relation relation;
  relation.schema.Add({"s", "suppkey"});
  relation.schema.Add({"s", "name"});
  relation.schema.Add({"s", "balance"});
  for (int i = 0; i < 5; ++i) {
    relation.rows.push_back(Tuple{
        Value::Int64(i), Value::String("supplier-" +
                                                        std::to_string(i)),
        i % 2 == 0 ? Value::Double(i * 1.5) : Value::Null()});
  }
  std::string valid;
  net::SerializeRelation(relation, &valid);
  FuzzBinaryDecoder(
      202, [](const std::string& s) { (void)net::DeserializeRelation(s); },
      valid);
}

TEST(FuzzTest, WireErrorAndEndPayloadDecodersNeverCrash) {
  std::string valid_error;
  net::EncodeErrorPayload(Status::Timeout("deadline exceeded"), &valid_error);
  FuzzBinaryDecoder(203,
                    [](const std::string& s) {
                      Status carried = Status::OK();
                      (void)net::DecodeErrorPayload(s, &carried);
                    },
                    valid_error);
  std::string valid_end;
  net::EncodeEndPayload({12, 3456}, &valid_end);
  FuzzBinaryDecoder(
      204, [](const std::string& s) { (void)net::DecodeEndPayload(s); },
      valid_end);
  std::string valid_request;
  net::EncodeRequestPayload("select 1 from Supplier", &valid_request);
  FuzzBinaryDecoder(
      205, [](const std::string& s) { (void)net::DecodeRequestPayload(s); },
      valid_request);
}

TEST(FuzzTest, TupleDecoderNeverCrashes) {
  Tuple t{Value::Int64(-7), Value::Double(3.25),
                  Value::String("héllo"), Value::Null()};
  std::string valid;
  engine::SerializeTuple(t, &valid);
  FuzzBinaryDecoder(206,
                    [](const std::string& s) {
                      size_t offset = 0;
                      (void)engine::DeserializeTuple(s, &offset);
                    },
                    valid);
}

// --- CSV bulk load into sharded columnar storage --------------------------
// The loader is the one path where external bytes become column cells, so
// corruption must surface as a Status before any shard invariant can bend:
// a partial load (rows before the bad line) must leave the table with its
// dual representation intact and columnar_exact still true.

std::unique_ptr<Database> MakeCsvTarget() {
  auto db = std::make_unique<Database>();
  db->set_default_shard_count(4);
  TableSchema schema("Part", {{"partkey", DataType::kInt64, false},
                              {"weight", DataType::kDouble, true},
                              {"name", DataType::kString, true}});
  EXPECT_TRUE(schema.SetPrimaryKey({"partkey"}).ok());
  EXPECT_TRUE(db->CreateTable(std::move(schema)).ok());
  return db;
}

/// Attempts the load and checks that however it ended, the table's shard
/// decomposition still tiles the row store exactly.
void LoadAndCheckInvariants(const std::string& csv) {
  auto db = MakeCsvTarget();
  std::istringstream in(csv);
  auto loaded = LoadCsv(&in, CsvLoadOptions{}, "Part", db.get());
  Table* table = *db->GetTable("Part");
  if (loaded.ok()) {
    ASSERT_EQ(*loaded, table->num_rows());
  }
  ASSERT_TRUE(table->columnar_exact());  // validated inserts only
  size_t total = 0;
  for (size_t s = 0; s < table->shard_count(); ++s) {
    total += table->shard(s).size();
  }
  ASSERT_EQ(total, table->num_rows());
  for (size_t g = 0; g < table->num_rows(); ++g) {
    const Table::RowLoc loc = table->row_loc(g);
    ASSERT_EQ(table->shard(loc.shard).global_id(loc.pos), g);
  }
}

TEST(FuzzTest, CsvColumnarLoaderRejectsCorruptionClasses) {
  const std::string valid =
      "partkey,weight,name\n"
      "1,1.5,widget\n"
      "2,,\"a,b\"\n"
      "3,2.25,\"he said \"\"hi\"\"\"\n";
  {  // pristine input loads fully
    auto db = MakeCsvTarget();
    std::istringstream in(valid);
    auto loaded = LoadCsv(&in, CsvLoadOptions{}, "Part", db.get());
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(*loaded, 3u);
  }
  auto must_reject = [](const std::string& csv) {
    auto db = MakeCsvTarget();
    std::istringstream in(csv);
    auto loaded = LoadCsv(&in, CsvLoadOptions{}, "Part", db.get());
    EXPECT_FALSE(loaded.ok()) << "accepted: " << csv;
  };
  // Torn row: the stream ends mid-record, leaving too few fields.
  must_reject("partkey,weight,name\n1,1.5,widget\n2,0");
  // Wrong arity, both directions.
  must_reject("partkey,weight,name\n1,1.5\n");
  must_reject("partkey,weight,name\n1,1.5,widget,extra\n");
  // Non-numeric bytes in numeric columns (including trailing garbage that
  // a bare strtoll/strtod prefix parse would silently swallow).
  must_reject("partkey,weight,name\nabc,1.5,widget\n");
  must_reject("partkey,weight,name\n12x,1.5,widget\n");
  must_reject("partkey,weight,name\n1,1.5.5,widget\n");
  // NULL into a non-nullable key column.
  must_reject("partkey,weight,name\n,1.5,widget\n");
  // Overlong string fields are data, not corruption: they must load and
  // round-trip through the shard string pool.
  {
    auto db = MakeCsvTarget();
    const std::string big(1 << 20, 'x');
    std::istringstream in("partkey,weight,name\n1,0.5," + big + "\n");
    auto loaded = LoadCsv(&in, CsvLoadOptions{}, "Part", db.get());
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    Table* table = *db->GetTable("Part");
    const Table::RowLoc loc = table->row_loc(0);
    EXPECT_EQ(table->shard(loc.shard).ValueAt(2, loc.pos).AsString(), big);
  }
}

TEST(FuzzTest, CsvColumnarLoaderNeverCrashesOnMutatedInput) {
  const std::string valid =
      "partkey,weight,name\n"
      "1,1.5,widget\n"
      "2,,\"a,b\"\n"
      "3,2.25,\"he said \"\"hi\"\"\"\n"
      "4,-0.0,\n";
  // Every prefix truncation (torn mid-byte anywhere, not just row ends).
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    LoadAndCheckInvariants(valid.substr(0, cut));
  }
  Random rng(302);
  for (int i = 0; i < 500; ++i) {
    LoadAndCheckInvariants(MutateBinary(&rng, valid));
    LoadAndCheckInvariants(RandomBytes(&rng, 200));
  }
}

TEST(FuzzTest, RoundTripSurvivorsStillRoundTrip) {
  // Mutated RXL that still parses must round-trip through ToString.
  Random rng(107);
  int survivors = 0;
  for (int i = 0; i < 3000; ++i) {
    std::string mutated = Mutate(&rng, core::Query2Rxl());
    auto q = rxl::ParseRxl(mutated);
    if (!q.ok()) continue;
    ++survivors;
    std::string printed = q->ToString();
    auto again = rxl::ParseRxl(printed);
    ASSERT_TRUE(again.ok()) << printed << "\n" << again.status();
    ASSERT_EQ(printed, again->ToString());
  }
  EXPECT_GT(survivors, 0);  // some single-char mutations stay valid
}

}  // namespace
}  // namespace silkroute
