# Empty compiler generated dependencies file for virtual_view.
# This may be replaced when dependencies are built.
