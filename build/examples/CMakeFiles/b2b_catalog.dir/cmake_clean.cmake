file(REMOVE_RECURSE
  "CMakeFiles/b2b_catalog.dir/b2b_catalog.cpp.o"
  "CMakeFiles/b2b_catalog.dir/b2b_catalog.cpp.o.d"
  "b2b_catalog"
  "b2b_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b2b_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
