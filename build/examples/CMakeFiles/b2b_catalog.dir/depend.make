# Empty dependencies file for b2b_catalog.
# This may be replaced when dependencies are built.
