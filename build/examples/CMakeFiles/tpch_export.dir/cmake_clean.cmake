file(REMOVE_RECURSE
  "CMakeFiles/tpch_export.dir/tpch_export.cpp.o"
  "CMakeFiles/tpch_export.dir/tpch_export.cpp.o.d"
  "tpch_export"
  "tpch_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpch_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
