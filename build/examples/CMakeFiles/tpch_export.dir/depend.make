# Empty dependencies file for tpch_export.
# This may be replaced when dependencies are built.
