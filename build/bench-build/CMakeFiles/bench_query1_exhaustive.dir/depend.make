# Empty dependencies file for bench_query1_exhaustive.
# This may be replaced when dependencies are built.
