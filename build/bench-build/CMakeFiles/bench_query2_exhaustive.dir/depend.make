# Empty dependencies file for bench_query2_exhaustive.
# This may be replaced when dependencies are built.
