file(REMOVE_RECURSE
  "../bench/bench_query2_exhaustive"
  "../bench/bench_query2_exhaustive.pdb"
  "CMakeFiles/bench_query2_exhaustive.dir/bench_query2_exhaustive.cc.o"
  "CMakeFiles/bench_query2_exhaustive.dir/bench_query2_exhaustive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_query2_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
