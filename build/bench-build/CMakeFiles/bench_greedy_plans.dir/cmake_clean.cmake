file(REMOVE_RECURSE
  "../bench/bench_greedy_plans"
  "../bench/bench_greedy_plans.pdb"
  "CMakeFiles/bench_greedy_plans.dir/bench_greedy_plans.cc.o"
  "CMakeFiles/bench_greedy_plans.dir/bench_greedy_plans.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
