# Empty dependencies file for bench_greedy_plans.
# This may be replaced when dependencies are built.
