# Empty dependencies file for bench_greedy_configB.
# This may be replaced when dependencies are built.
