file(REMOVE_RECURSE
  "../bench/bench_greedy_configB"
  "../bench/bench_greedy_configB.pdb"
  "CMakeFiles/bench_greedy_configB.dir/bench_greedy_configB.cc.o"
  "CMakeFiles/bench_greedy_configB.dir/bench_greedy_configB.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_greedy_configB.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
