file(REMOVE_RECURSE
  "../bench/bench_styles"
  "../bench/bench_styles.pdb"
  "CMakeFiles/bench_styles.dir/bench_styles.cc.o"
  "CMakeFiles/bench_styles.dir/bench_styles.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_styles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
