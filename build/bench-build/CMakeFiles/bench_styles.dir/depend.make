# Empty dependencies file for bench_styles.
# This may be replaced when dependencies are built.
