# Empty compiler generated dependencies file for bench_view_trees.
# This may be replaced when dependencies are built.
