file(REMOVE_RECURSE
  "../bench/bench_view_trees"
  "../bench/bench_view_trees.pdb"
  "CMakeFiles/bench_view_trees.dir/bench_view_trees.cc.o"
  "CMakeFiles/bench_view_trees.dir/bench_view_trees.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_view_trees.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
