file(REMOVE_RECURSE
  "../bench/bench_subview"
  "../bench/bench_subview.pdb"
  "CMakeFiles/bench_subview.dir/bench_subview.cc.o"
  "CMakeFiles/bench_subview.dir/bench_subview.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_subview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
