# Empty compiler generated dependencies file for bench_subview.
# This may be replaced when dependencies are built.
