
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/silkroute/dtdgen.cc" "src/silkroute/CMakeFiles/silk_core.dir/dtdgen.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/dtdgen.cc.o.d"
  "/root/repo/src/silkroute/greedy.cc" "src/silkroute/CMakeFiles/silk_core.dir/greedy.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/greedy.cc.o.d"
  "/root/repo/src/silkroute/labeling.cc" "src/silkroute/CMakeFiles/silk_core.dir/labeling.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/labeling.cc.o.d"
  "/root/repo/src/silkroute/partition.cc" "src/silkroute/CMakeFiles/silk_core.dir/partition.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/partition.cc.o.d"
  "/root/repo/src/silkroute/publisher.cc" "src/silkroute/CMakeFiles/silk_core.dir/publisher.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/publisher.cc.o.d"
  "/root/repo/src/silkroute/queries.cc" "src/silkroute/CMakeFiles/silk_core.dir/queries.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/queries.cc.o.d"
  "/root/repo/src/silkroute/source.cc" "src/silkroute/CMakeFiles/silk_core.dir/source.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/source.cc.o.d"
  "/root/repo/src/silkroute/sqlgen.cc" "src/silkroute/CMakeFiles/silk_core.dir/sqlgen.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/sqlgen.cc.o.d"
  "/root/repo/src/silkroute/subview.cc" "src/silkroute/CMakeFiles/silk_core.dir/subview.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/subview.cc.o.d"
  "/root/repo/src/silkroute/tagger.cc" "src/silkroute/CMakeFiles/silk_core.dir/tagger.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/tagger.cc.o.d"
  "/root/repo/src/silkroute/view_tree.cc" "src/silkroute/CMakeFiles/silk_core.dir/view_tree.cc.o" "gcc" "src/silkroute/CMakeFiles/silk_core.dir/view_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rxl/CMakeFiles/silk_rxl.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/silk_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/silk_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/silk_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/silk_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/silk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
