# Empty dependencies file for silk_core.
# This may be replaced when dependencies are built.
