file(REMOVE_RECURSE
  "CMakeFiles/silk_core.dir/dtdgen.cc.o"
  "CMakeFiles/silk_core.dir/dtdgen.cc.o.d"
  "CMakeFiles/silk_core.dir/greedy.cc.o"
  "CMakeFiles/silk_core.dir/greedy.cc.o.d"
  "CMakeFiles/silk_core.dir/labeling.cc.o"
  "CMakeFiles/silk_core.dir/labeling.cc.o.d"
  "CMakeFiles/silk_core.dir/partition.cc.o"
  "CMakeFiles/silk_core.dir/partition.cc.o.d"
  "CMakeFiles/silk_core.dir/publisher.cc.o"
  "CMakeFiles/silk_core.dir/publisher.cc.o.d"
  "CMakeFiles/silk_core.dir/queries.cc.o"
  "CMakeFiles/silk_core.dir/queries.cc.o.d"
  "CMakeFiles/silk_core.dir/source.cc.o"
  "CMakeFiles/silk_core.dir/source.cc.o.d"
  "CMakeFiles/silk_core.dir/sqlgen.cc.o"
  "CMakeFiles/silk_core.dir/sqlgen.cc.o.d"
  "CMakeFiles/silk_core.dir/subview.cc.o"
  "CMakeFiles/silk_core.dir/subview.cc.o.d"
  "CMakeFiles/silk_core.dir/tagger.cc.o"
  "CMakeFiles/silk_core.dir/tagger.cc.o.d"
  "CMakeFiles/silk_core.dir/view_tree.cc.o"
  "CMakeFiles/silk_core.dir/view_tree.cc.o.d"
  "libsilk_core.a"
  "libsilk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
