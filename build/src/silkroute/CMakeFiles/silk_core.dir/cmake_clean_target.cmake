file(REMOVE_RECURSE
  "libsilk_core.a"
)
