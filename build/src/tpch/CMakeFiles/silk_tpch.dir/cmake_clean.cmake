file(REMOVE_RECURSE
  "CMakeFiles/silk_tpch.dir/generator.cc.o"
  "CMakeFiles/silk_tpch.dir/generator.cc.o.d"
  "CMakeFiles/silk_tpch.dir/schema.cc.o"
  "CMakeFiles/silk_tpch.dir/schema.cc.o.d"
  "libsilk_tpch.a"
  "libsilk_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
