file(REMOVE_RECURSE
  "libsilk_tpch.a"
)
