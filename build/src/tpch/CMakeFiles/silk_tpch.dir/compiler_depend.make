# Empty compiler generated dependencies file for silk_tpch.
# This may be replaced when dependencies are built.
