file(REMOVE_RECURSE
  "CMakeFiles/silk_xml.dir/dtd.cc.o"
  "CMakeFiles/silk_xml.dir/dtd.cc.o.d"
  "CMakeFiles/silk_xml.dir/escape.cc.o"
  "CMakeFiles/silk_xml.dir/escape.cc.o.d"
  "CMakeFiles/silk_xml.dir/reader.cc.o"
  "CMakeFiles/silk_xml.dir/reader.cc.o.d"
  "CMakeFiles/silk_xml.dir/writer.cc.o"
  "CMakeFiles/silk_xml.dir/writer.cc.o.d"
  "libsilk_xml.a"
  "libsilk_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
