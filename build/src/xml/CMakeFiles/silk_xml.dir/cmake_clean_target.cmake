file(REMOVE_RECURSE
  "libsilk_xml.a"
)
