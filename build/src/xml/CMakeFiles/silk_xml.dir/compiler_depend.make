# Empty compiler generated dependencies file for silk_xml.
# This may be replaced when dependencies are built.
