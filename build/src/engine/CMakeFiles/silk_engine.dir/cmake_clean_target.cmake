file(REMOVE_RECURSE
  "libsilk_engine.a"
)
