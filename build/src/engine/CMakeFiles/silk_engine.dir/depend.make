# Empty dependencies file for silk_engine.
# This may be replaced when dependencies are built.
