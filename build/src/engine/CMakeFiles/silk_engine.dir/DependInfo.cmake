
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/estimator.cc" "src/engine/CMakeFiles/silk_engine.dir/estimator.cc.o" "gcc" "src/engine/CMakeFiles/silk_engine.dir/estimator.cc.o.d"
  "/root/repo/src/engine/executor.cc" "src/engine/CMakeFiles/silk_engine.dir/executor.cc.o" "gcc" "src/engine/CMakeFiles/silk_engine.dir/executor.cc.o.d"
  "/root/repo/src/engine/expr_eval.cc" "src/engine/CMakeFiles/silk_engine.dir/expr_eval.cc.o" "gcc" "src/engine/CMakeFiles/silk_engine.dir/expr_eval.cc.o.d"
  "/root/repo/src/engine/rel_schema.cc" "src/engine/CMakeFiles/silk_engine.dir/rel_schema.cc.o" "gcc" "src/engine/CMakeFiles/silk_engine.dir/rel_schema.cc.o.d"
  "/root/repo/src/engine/stats.cc" "src/engine/CMakeFiles/silk_engine.dir/stats.cc.o" "gcc" "src/engine/CMakeFiles/silk_engine.dir/stats.cc.o.d"
  "/root/repo/src/engine/tuple_stream.cc" "src/engine/CMakeFiles/silk_engine.dir/tuple_stream.cc.o" "gcc" "src/engine/CMakeFiles/silk_engine.dir/tuple_stream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sql/CMakeFiles/silk_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/silk_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/silk_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
