file(REMOVE_RECURSE
  "CMakeFiles/silk_engine.dir/estimator.cc.o"
  "CMakeFiles/silk_engine.dir/estimator.cc.o.d"
  "CMakeFiles/silk_engine.dir/executor.cc.o"
  "CMakeFiles/silk_engine.dir/executor.cc.o.d"
  "CMakeFiles/silk_engine.dir/expr_eval.cc.o"
  "CMakeFiles/silk_engine.dir/expr_eval.cc.o.d"
  "CMakeFiles/silk_engine.dir/rel_schema.cc.o"
  "CMakeFiles/silk_engine.dir/rel_schema.cc.o.d"
  "CMakeFiles/silk_engine.dir/stats.cc.o"
  "CMakeFiles/silk_engine.dir/stats.cc.o.d"
  "CMakeFiles/silk_engine.dir/tuple_stream.cc.o"
  "CMakeFiles/silk_engine.dir/tuple_stream.cc.o.d"
  "libsilk_engine.a"
  "libsilk_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
