file(REMOVE_RECURSE
  "libsilk_relational.a"
)
