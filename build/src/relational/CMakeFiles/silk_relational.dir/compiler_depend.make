# Empty compiler generated dependencies file for silk_relational.
# This may be replaced when dependencies are built.
