file(REMOVE_RECURSE
  "CMakeFiles/silk_relational.dir/catalog.cc.o"
  "CMakeFiles/silk_relational.dir/catalog.cc.o.d"
  "CMakeFiles/silk_relational.dir/csv.cc.o"
  "CMakeFiles/silk_relational.dir/csv.cc.o.d"
  "CMakeFiles/silk_relational.dir/database.cc.o"
  "CMakeFiles/silk_relational.dir/database.cc.o.d"
  "CMakeFiles/silk_relational.dir/schema.cc.o"
  "CMakeFiles/silk_relational.dir/schema.cc.o.d"
  "CMakeFiles/silk_relational.dir/table.cc.o"
  "CMakeFiles/silk_relational.dir/table.cc.o.d"
  "CMakeFiles/silk_relational.dir/tuple.cc.o"
  "CMakeFiles/silk_relational.dir/tuple.cc.o.d"
  "CMakeFiles/silk_relational.dir/value.cc.o"
  "CMakeFiles/silk_relational.dir/value.cc.o.d"
  "libsilk_relational.a"
  "libsilk_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
