file(REMOVE_RECURSE
  "libsilk_rxl.a"
)
