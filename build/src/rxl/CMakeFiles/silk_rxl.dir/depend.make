# Empty dependencies file for silk_rxl.
# This may be replaced when dependencies are built.
