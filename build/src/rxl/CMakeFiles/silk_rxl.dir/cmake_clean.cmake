file(REMOVE_RECURSE
  "CMakeFiles/silk_rxl.dir/ast.cc.o"
  "CMakeFiles/silk_rxl.dir/ast.cc.o.d"
  "CMakeFiles/silk_rxl.dir/parser.cc.o"
  "CMakeFiles/silk_rxl.dir/parser.cc.o.d"
  "libsilk_rxl.a"
  "libsilk_rxl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_rxl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
