# Empty compiler generated dependencies file for silk_common.
# This may be replaced when dependencies are built.
