file(REMOVE_RECURSE
  "libsilk_common.a"
)
