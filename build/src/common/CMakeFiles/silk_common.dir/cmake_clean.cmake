file(REMOVE_RECURSE
  "CMakeFiles/silk_common.dir/random.cc.o"
  "CMakeFiles/silk_common.dir/random.cc.o.d"
  "CMakeFiles/silk_common.dir/status.cc.o"
  "CMakeFiles/silk_common.dir/status.cc.o.d"
  "CMakeFiles/silk_common.dir/string_util.cc.o"
  "CMakeFiles/silk_common.dir/string_util.cc.o.d"
  "libsilk_common.a"
  "libsilk_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
