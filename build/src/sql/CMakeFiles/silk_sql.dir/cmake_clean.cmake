file(REMOVE_RECURSE
  "CMakeFiles/silk_sql.dir/ast.cc.o"
  "CMakeFiles/silk_sql.dir/ast.cc.o.d"
  "CMakeFiles/silk_sql.dir/ddl.cc.o"
  "CMakeFiles/silk_sql.dir/ddl.cc.o.d"
  "CMakeFiles/silk_sql.dir/lexer.cc.o"
  "CMakeFiles/silk_sql.dir/lexer.cc.o.d"
  "CMakeFiles/silk_sql.dir/parser.cc.o"
  "CMakeFiles/silk_sql.dir/parser.cc.o.d"
  "libsilk_sql.a"
  "libsilk_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silk_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
