file(REMOVE_RECURSE
  "libsilk_sql.a"
)
