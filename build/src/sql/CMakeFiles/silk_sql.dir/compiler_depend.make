# Empty compiler generated dependencies file for silk_sql.
# This may be replaced when dependencies are built.
