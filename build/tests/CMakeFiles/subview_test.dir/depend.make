# Empty dependencies file for subview_test.
# This may be replaced when dependencies are built.
