file(REMOVE_RECURSE
  "CMakeFiles/subview_test.dir/subview_test.cc.o"
  "CMakeFiles/subview_test.dir/subview_test.cc.o.d"
  "subview_test"
  "subview_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subview_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
