# Empty dependencies file for rxl_test.
# This may be replaced when dependencies are built.
