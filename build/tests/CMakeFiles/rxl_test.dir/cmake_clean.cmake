file(REMOVE_RECURSE
  "CMakeFiles/rxl_test.dir/rxl_test.cc.o"
  "CMakeFiles/rxl_test.dir/rxl_test.cc.o.d"
  "rxl_test"
  "rxl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rxl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
