file(REMOVE_RECURSE
  "CMakeFiles/tagger_test.dir/tagger_test.cc.o"
  "CMakeFiles/tagger_test.dir/tagger_test.cc.o.d"
  "tagger_test"
  "tagger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tagger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
