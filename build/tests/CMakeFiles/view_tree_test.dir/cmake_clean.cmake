file(REMOVE_RECURSE
  "CMakeFiles/view_tree_test.dir/view_tree_test.cc.o"
  "CMakeFiles/view_tree_test.dir/view_tree_test.cc.o.d"
  "view_tree_test"
  "view_tree_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_tree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
