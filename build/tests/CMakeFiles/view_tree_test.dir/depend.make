# Empty dependencies file for view_tree_test.
# This may be replaced when dependencies are built.
