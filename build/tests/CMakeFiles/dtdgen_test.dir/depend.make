# Empty dependencies file for dtdgen_test.
# This may be replaced when dependencies are built.
