file(REMOVE_RECURSE
  "CMakeFiles/dtdgen_test.dir/dtdgen_test.cc.o"
  "CMakeFiles/dtdgen_test.dir/dtdgen_test.cc.o.d"
  "dtdgen_test"
  "dtdgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtdgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
