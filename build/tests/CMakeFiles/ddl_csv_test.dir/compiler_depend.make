# Empty compiler generated dependencies file for ddl_csv_test.
# This may be replaced when dependencies are built.
