file(REMOVE_RECURSE
  "CMakeFiles/ddl_csv_test.dir/ddl_csv_test.cc.o"
  "CMakeFiles/ddl_csv_test.dir/ddl_csv_test.cc.o.d"
  "ddl_csv_test"
  "ddl_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddl_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
