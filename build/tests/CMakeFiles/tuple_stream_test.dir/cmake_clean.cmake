file(REMOVE_RECURSE
  "CMakeFiles/tuple_stream_test.dir/tuple_stream_test.cc.o"
  "CMakeFiles/tuple_stream_test.dir/tuple_stream_test.cc.o.d"
  "tuple_stream_test"
  "tuple_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tuple_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
