# Empty dependencies file for tuple_stream_test.
# This may be replaced when dependencies are built.
