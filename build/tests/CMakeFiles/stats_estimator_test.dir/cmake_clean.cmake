file(REMOVE_RECURSE
  "CMakeFiles/stats_estimator_test.dir/stats_estimator_test.cc.o"
  "CMakeFiles/stats_estimator_test.dir/stats_estimator_test.cc.o.d"
  "stats_estimator_test"
  "stats_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
