# Empty compiler generated dependencies file for stats_estimator_test.
# This may be replaced when dependencies are built.
