# Empty compiler generated dependencies file for silkroute_cli.
# This may be replaced when dependencies are built.
