file(REMOVE_RECURSE
  "CMakeFiles/silkroute_cli.dir/silkroute_cli.cc.o"
  "CMakeFiles/silkroute_cli.dir/silkroute_cli.cc.o.d"
  "silkroute"
  "silkroute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/silkroute_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
