# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_publish "/root/repo/build/tools/silkroute" "--schema" "/root/repo/examples/demo/schema.sql" "--view" "/root/repo/examples/demo/view.rxl" "--root" "league" "--pretty")
set_tests_properties(cli_publish PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_dtd "/root/repo/build/tools/silkroute" "--schema" "/root/repo/examples/demo/schema.sql" "--view" "/root/repo/examples/demo/view.rxl" "--root" "league" "--dtd")
set_tests_properties(cli_dtd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_explain "/root/repo/build/tools/silkroute" "--schema" "/root/repo/examples/demo/schema.sql" "--view" "/root/repo/examples/demo/view.rxl" "--explain")
set_tests_properties(cli_explain PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;16;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_subview "/root/repo/build/tools/silkroute" "--schema" "/root/repo/examples/demo/schema.sql" "--view" "/root/repo/examples/demo/view.rxl" "--subview" "/team[name='Rovers']/player" "--root" "result")
set_tests_properties(cli_subview PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_fusion "/root/repo/build/tools/silkroute" "--schema" "/root/repo/examples/demo_integration/schema.sql" "--view" "/root/repo/examples/demo_integration/view.rxl" "--root" "directory" "--pretty")
set_tests_properties(cli_fusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;23;add_test;/root/repo/tools/CMakeLists.txt;0;")
