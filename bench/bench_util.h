// Shared harness for the experiment benchmarks. Each bench binary
// regenerates one table or figure of the paper; see EXPERIMENTS.md for the
// index. Scales are configurable through environment variables:
//   SILK_SCALE_A  -- "Config A" database scale (default 0.025, ~1 MB)
//   SILK_SCALE_B  -- "Config B" database scale (default 0.25, ~10 MB)
//   SILK_REPEAT   -- repetitions per measured plan (default 1)
//
// Faulty-source scenario (FaultySource below):
//   SILK_FAULT_PROB        -- per-query flake probability (default 0.1)
//   SILK_FAULT_SEED        -- fault policy seed (default 1)
//   SILK_FAULT_LATENCY_MS  -- injected latency per query (default 0)
//
// Every bench binary also writes its results as BENCH_<name>.json
// (BenchReport below) into SILK_BENCH_JSON_DIR or the working directory.
#ifndef SILKROUTE_BENCH_BENCH_UTIL_H_
#define SILKROUTE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "engine/fault_injection.h"
#include "obs/export.h"
#include "relational/database.h"
#include "silkroute/publisher.h"
#include "tpch/generator.h"

namespace silkroute::bench {

inline double EnvScale(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atof(value);
}

inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || value[0] == '\0') return fallback;
  return std::atoi(value);
}

/// `shard_count` picks the columnar shard fan-out for every base table;
/// the default matches Database's own default, so existing call sites keep
/// measuring the production layout.
inline std::unique_ptr<Database> MakeDatabase(double scale,
                                              size_t shard_count = 4) {
  auto db = std::make_unique<Database>();
  db->set_default_shard_count(shard_count);
  tpch::TpchConfig config;
  config.scale_factor = scale;
  Status s = tpch::GenerateTpch(config, db.get());
  if (!s.ok()) {
    std::fprintf(stderr, "TPC-H generation failed: %s\n",
                 s.ToString().c_str());
    std::exit(1);
  }
  return db;
}

/// Executes one plan and returns its metrics (XML discarded). Repeats
/// SILK_REPEAT times and keeps the fastest run (steady-state behaviour).
inline core::PlanMetrics MeasurePlan(core::Publisher& publisher,
                                     const core::ViewTree& tree,
                                     uint64_t mask,
                                     const core::PublishOptions& options,
                                     int repeat = 0) {
  if (repeat <= 0) repeat = EnvInt("SILK_REPEAT", 1);
  core::PlanMetrics best;
  for (int i = 0; i < repeat; ++i) {
    std::ostringstream sink;
    auto metrics = publisher.ExecutePlan(tree, mask, options, &sink);
    if (!metrics.ok()) {
      std::fprintf(stderr, "plan %llu failed: %s\n",
                   static_cast<unsigned long long>(mask),
                   metrics.status().ToString().c_str());
      std::exit(1);
    }
    if (i == 0 || metrics->total_ms() < best.total_ms()) {
      best = std::move(metrics).value();
    }
  }
  return best;
}

/// Faulty-source scenario: an unreliable wire to the RDBMS, seeded so runs
/// are reproducible. Point `PublishOptions::executor` at executor() to
/// measure plan families under source flakiness — degradation shifts the
/// unified/partitioned trade-off, since big components are both the fastest
/// healthy plans and the most expensive ones to lose and re-plan.
///
///   bench::FaultySource source(db.get());
///   options.executor = source.executor();
///   auto metrics = MeasurePlan(publisher, tree, mask, options);
///   // metrics.retries / metrics.degraded_components tell the story.
class FaultySource {
 public:
  explicit FaultySource(const Database* db)
      : db_executor_(db), faulty_(&db_executor_, MakePolicy()) {}

  engine::SqlExecutor* executor() { return &faulty_; }
  engine::FaultStats stats() const { return faulty_.stats(); }

 private:
  static engine::FaultPolicy MakePolicy() {
    engine::FaultPolicy policy;
    policy.seed = static_cast<uint64_t>(EnvInt("SILK_FAULT_SEED", 1));
    engine::FaultRule rule;
    rule.flake_probability = EnvScale("SILK_FAULT_PROB", 0.1);
    rule.latency_ms = EnvScale("SILK_FAULT_LATENCY_MS", 0);
    policy.rules.push_back(rule);
    return policy;
  }

  engine::DatabaseExecutor db_executor_;
  engine::FaultInjectingExecutor faulty_;
};

inline const char* Header(const std::string& title) {
  static std::string buffer;
  buffer = "\n=== " + title + " ===\n";
  return buffer.c_str();
}

/// Machine-readable companion to the printed tables: rows of named numeric
/// values, written as BENCH_<bench>.json when the report is destroyed (or
/// Write() is called explicitly). Output lands in SILK_BENCH_JSON_DIR
/// (default: the working directory), so CI and plotting scripts consume
/// results without scraping stdout.
class BenchReport {
 public:
  explicit BenchReport(std::string bench) : bench_(std::move(bench)) {}
  ~BenchReport() { Write(); }
  BenchReport(const BenchReport&) = delete;
  BenchReport& operator=(const BenchReport&) = delete;

  void Add(std::string row,
           std::vector<std::pair<std::string, double>> values) {
    rows_.push_back(Row{std::move(row), std::move(values)});
  }

  /// The standard per-plan row, shared by the experiment benches.
  void AddPlan(std::string row, const core::PlanMetrics& m) {
    Add(std::move(row),
        {{"query_ms", m.query_ms},
         {"bind_ms", m.bind_ms},
         {"tag_ms", m.tag_ms},
         {"total_ms", m.total_ms()},
         {"streams", static_cast<double>(m.num_streams)},
         {"rows", static_cast<double>(m.rows)},
         {"wire_bytes", static_cast<double>(m.wire_bytes)},
         {"attempts", static_cast<double>(m.attempts)},
         {"retries", static_cast<double>(m.retries)},
         {"timed_out", m.timed_out ? 1.0 : 0.0}});
  }

  /// Idempotent; the destructor calls it.
  void Write() {
    if (written_) return;
    written_ = true;
    const char* dir = std::getenv("SILK_BENCH_JSON_DIR");
    std::string path = std::string(dir != nullptr && dir[0] != '\0' ? dir
                                                                    : ".") +
                       "/BENCH_" + bench_ + ".json";
    std::ofstream out(path);
    if (!out.is_open()) {
      std::fprintf(stderr, "bench: cannot write '%s'\n", path.c_str());
      return;
    }
    out << "{\"bench\":\"" << obs::JsonEscape(bench_) << "\",\"rows\":[";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      out << (i > 0 ? ",\n" : "\n") << " {\"name\":\""
          << obs::JsonEscape(row.name) << "\",\"values\":{";
      for (size_t j = 0; j < row.values.size(); ++j) {
        char number[40];
        std::snprintf(number, sizeof(number), "%.6g", row.values[j].second);
        out << (j > 0 ? "," : "") << "\""
            << obs::JsonEscape(row.values[j].first) << "\":" << number;
      }
      out << "}}";
    }
    out << "\n]}\n";
    std::fprintf(stderr, "bench json: %s (%zu row(s))\n", path.c_str(),
                 rows_.size());
  }

 private:
  struct Row {
    std::string name;
    std::vector<std::pair<std::string, double>> values;
  };

  const std::string bench_;
  std::vector<Row> rows_;
  bool written_ = false;
};

}  // namespace silkroute::bench

#endif  // SILKROUTE_BENCH_BENCH_UTIL_H_
