// E10 (ablation, paper Sec. 4 last paragraph): "The outer-join plan
// actually produces fewer, but wider, tuples than the outer-union plan;
// the additional width may induce anomalous caching behavior in JDBC.
// This suggests that we could further improve the total running time of
// the best plans if we rewrite them from outer joins to outer unions."
//
// This bench quantifies that trade-off on our substrate: for the unified
// and the best 5-stream plans of Query 1, both SQL shapes, with and
// without reduction, it reports tuple counts, average width, wire bytes,
// and times.
#include <cstdio>

#include "bench/bench_util.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"

using namespace silkroute;
using namespace silkroute::core;

int main() {
  const double scale = bench::EnvScale("SILK_SCALE_A", 0.025);
  auto db = bench::MakeDatabase(scale);
  std::printf("%s", bench::Header(
                        "E10 — outer-join vs outer-union plan shapes "
                        "(Sec. 3.4 / Sec. 4)"));
  std::printf("database bytes: %zu (scale %.3f)\n\n", db->TotalByteSize(),
              scale);

  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  if (!tree.ok()) return 1;

  struct Case {
    const char* plan;
    uint64_t mask;
  };
  const Case plans[] = {
      {"unified", 0x1FF},
      {"5-stream", 0x1E8},
  };

  bench::BenchReport report("styles");
  std::printf("%-10s %-12s %-8s %9s %9s %11s %10s %10s\n", "plan", "style",
              "reduce", "tuples", "avg B/t", "wire bytes", "query ms",
              "total ms");
  for (const Case& c : plans) {
    for (auto style : {SqlGenStyle::kOuterJoin, SqlGenStyle::kOuterUnion}) {
      for (bool reduce : {false, true}) {
        PublishOptions opt;
        opt.style = style;
        opt.reduce = reduce;
        opt.collect_sql = false;
        PlanMetrics m = bench::MeasurePlan(publisher, *tree, c.mask, opt);
        std::printf("%-10s %-12s %-8s %9zu %9.1f %11zu %10.1f %10.1f\n",
                    c.plan, SqlGenStyleToString(style),
                    reduce ? "yes" : "no", m.rows,
                    m.rows ? static_cast<double>(m.wire_bytes) /
                                 static_cast<double>(m.rows)
                           : 0.0,
                    m.wire_bytes, m.query_ms, m.total_ms());
        report.AddPlan(std::string(c.plan) + "/" +
                           SqlGenStyleToString(style) +
                           (reduce ? "/reduced" : "/nonreduced"),
                       m);
      }
    }
  }
  std::printf(
      "\nexpected shape: outer-join rows are fewer but wider than\n"
      "outer-union rows for the same plan; reduction shrinks both.\n");
  return 0;
}
