// E8 — google-benchmark micro suite for the relational substrate: the
// operator throughputs that the cost model abstracts (scan+filter, hash
// join, disjunctive outer join, sort, wire serialization, end-to-end plan
// execution). Context for interpreting the experiment tables.
#include <benchmark/benchmark.h>

#include <sstream>
#include <string_view>

#include "bench/bench_util.h"
#include "engine/executor.h"
#include "engine/morsel.h"
#include "engine/tuple_stream.h"
#include "silkroute/partition.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"

using namespace silkroute;
using namespace silkroute::core;

namespace {

Database* SharedDb() {
  static Database* db = bench::MakeDatabase(0.01).release();
  return db;
}

void BM_SeqScanFilter(benchmark::State& state) {
  engine::QueryExecutor exec(SharedDb());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select l.orderkey from LineItem l where l.qty < 10");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SeqScanFilter);

void BM_HashJoin(benchmark::State& state) {
  engine::QueryExecutor exec(SharedDb());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select l.orderkey, o.custkey from LineItem l, Orders o "
        "where l.orderkey = o.orderkey");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HashJoin);

void BM_ChainJoin4Way(benchmark::State& state) {
  engine::QueryExecutor exec(SharedDb());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select s.name, p.name from Supplier s, PartSupp ps, Part p, "
        "LineItem l where s.suppkey = ps.suppkey and ps.partkey = p.partkey "
        "and l.partkey = ps.partkey and l.suppkey = ps.suppkey");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChainJoin4Way);

void BM_DisjunctiveOuterJoin(benchmark::State& state) {
  engine::QueryExecutor exec(SharedDb());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select s.suppkey, Q.v from Supplier s left outer join "
        "((select 1 as t, n.nationkey as k, n.name as v from Nation n) union "
        " (select 2 as t, ps.suppkey as k, null as v from PartSupp ps)) as Q "
        "on (Q.t = 1 and s.nationkey = Q.k) or (Q.t = 2 and s.suppkey = Q.k)");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DisjunctiveOuterJoin);

void BM_FilteredScanNoIndex(benchmark::State& state) {
  engine::QueryExecutor exec(SharedDb());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select o.custkey from Orders o where o.orderkey = 42");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FilteredScanNoIndex);

void BM_IndexProbe(benchmark::State& state) {
  static bool indexed = [] {
    auto table = SharedDb()->GetTable("Orders");
    return table.ok() && (*table)->CreateIndex("orderkey").ok();
  }();
  benchmark::DoNotOptimize(indexed);
  engine::QueryExecutor exec(SharedDb());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select o.custkey from Orders o where o.orderkey = 42");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_IndexProbe);

void BM_SortWideRelation(benchmark::State& state) {
  engine::QueryExecutor exec(SharedDb());
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select l.orderkey, l.partkey, l.suppkey, l.qty, l.prc "
        "from LineItem l order by l.partkey, l.orderkey");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SortWideRelation);

void BM_WireSerialization(benchmark::State& state) {
  engine::QueryExecutor exec(SharedDb());
  auto rel = exec.ExecuteSql("select * from Orders");
  for (auto _ : state) {
    engine::Relation copy = *rel;
    engine::TupleStream stream(std::move(copy));
    size_t rows = 0;
    while (stream.Next().has_value()) ++rows;
    benchmark::DoNotOptimize(rows);
  }
}
BENCHMARK(BM_WireSerialization);

// --- Shard-count axis (DESIGN.md §16) -------------------------------------
// Arg = columnar shard count. The same scan+filter and hash join as above,
// but over databases built at 1/4/16 shards: results are byte-identical
// (differential_test pins that), so any delta here is pure storage-layout
// cost — shard dispatch overhead vs cache locality of narrower partitions.

Database* ShardedDb(int shard_count) {
  static Database* dbs[3] = {nullptr, nullptr, nullptr};
  const int slot = shard_count == 1 ? 0 : shard_count == 4 ? 1 : 2;
  if (dbs[slot] == nullptr) {
    dbs[slot] =
        bench::MakeDatabase(0.01, static_cast<size_t>(shard_count)).release();
  }
  return dbs[slot];
}

void BM_SeqScanFilterSharded(benchmark::State& state) {
  engine::QueryExecutor exec(ShardedDb(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select l.orderkey from LineItem l where l.qty < 10");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SeqScanFilterSharded)->Arg(1)->Arg(4)->Arg(16);

void BM_HashJoinSharded(benchmark::State& state) {
  engine::QueryExecutor exec(ShardedDb(static_cast<int>(state.range(0))));
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select l.orderkey, o.custkey from LineItem l, Orders o "
        "where l.orderkey = o.orderkey");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HashJoinSharded)->Arg(1)->Arg(4)->Arg(16);

// --- Morsel-parallel variants (DESIGN.md §11) -----------------------------
// Arg = engine threads; Arg(1) is the serial baseline the speedup compares
// against. On a single-core runner the >1 rows measure overhead, not
// speedup — bench_compare.py normalizes by the file's median speed factor.

void ConfigureParallel(engine::QueryExecutor* exec, engine::MorselPool* pool,
                       int threads) {
  if (threads > 1) {
    engine::ExecutorOptions opts;
    opts.parallelism = threads;
    opts.pool = pool;
    exec->set_exec_options(opts);
  }
}

void BM_HashJoinParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  engine::MorselPool pool(threads - 1);
  engine::QueryExecutor exec(SharedDb());
  ConfigureParallel(&exec, &pool, threads);
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select l.orderkey, o.custkey from LineItem l, Orders o "
        "where l.orderkey = o.orderkey");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_HashJoinParallel)->Arg(1)->Arg(2)->Arg(8);

void BM_ChainJoin4WayParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  engine::MorselPool pool(threads - 1);
  engine::QueryExecutor exec(SharedDb());
  ConfigureParallel(&exec, &pool, threads);
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select s.name, p.name from Supplier s, PartSupp ps, Part p, "
        "LineItem l where s.suppkey = ps.suppkey and ps.partkey = p.partkey "
        "and l.partkey = ps.partkey and l.suppkey = ps.suppkey");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_ChainJoin4WayParallel)->Arg(1)->Arg(2)->Arg(8);

void BM_SortWideRelationParallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  engine::MorselPool pool(threads - 1);
  engine::QueryExecutor exec(SharedDb());
  ConfigureParallel(&exec, &pool, threads);
  for (auto _ : state) {
    auto r = exec.ExecuteSql(
        "select l.orderkey, l.partkey, l.suppkey, l.qty, l.prc "
        "from LineItem l order by l.partkey, l.orderkey");
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SortWideRelationParallel)->Arg(1)->Arg(2)->Arg(8);

void BM_PublishUnifiedPlanParallel(benchmark::State& state) {
  static Publisher* publisher = new Publisher(SharedDb());
  static ViewTree* tree =
      new ViewTree(publisher->BuildViewTree(Query1Rxl()).value());
  PublishOptions opt;
  opt.collect_sql = false;
  opt.engine_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    std::ostringstream sink;
    auto m = publisher->ExecutePlan(*tree, 0x1FF, opt, &sink);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PublishUnifiedPlanParallel)->Arg(1)->Arg(2)->Arg(8);

void BM_PublishOptimalPlan(benchmark::State& state) {
  static Publisher* publisher = new Publisher(SharedDb());
  static ViewTree* tree =
      new ViewTree(publisher->BuildViewTree(Query1Rxl()).value());
  PublishOptions opt;
  opt.collect_sql = false;
  for (auto _ : state) {
    std::ostringstream sink;
    auto m = publisher->ExecutePlan(*tree, 0x1E8, opt, &sink);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PublishOptimalPlan);

void BM_PublishUnifiedPlan(benchmark::State& state) {
  static Publisher* publisher = new Publisher(SharedDb());
  static ViewTree* tree =
      new ViewTree(publisher->BuildViewTree(Query1Rxl()).value());
  PublishOptions opt;
  opt.collect_sql = false;
  for (auto _ : state) {
    std::ostringstream sink;
    auto m = publisher->ExecutePlan(*tree, 0x1FF, opt, &sink);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_PublishUnifiedPlan);

}  // namespace

// Like BENCHMARK_MAIN(), but defaults --benchmark_out to the shared
// BENCH_<name>.json convention (google-benchmark's own JSON schema) unless
// the caller passed an output flag. SILK_BENCH_JSON_DIR relocates it, as
// for BenchReport.
int main(int argc, char** argv) {
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark_out", 0) == 0) {
      has_out = true;
    }
  }
  std::vector<char*> args(argv, argv + argc);
  const char* dir = std::getenv("SILK_BENCH_JSON_DIR");
  std::string out_flag = std::string("--benchmark_out=") +
                         (dir != nullptr && dir[0] != '\0' ? dir : ".") +
                         "/BENCH_engine_micro.json";
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int args_argc = static_cast<int>(args.size());
  benchmark::Initialize(&args_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
