// E7 — structural figures: the view trees of Fig. 4 (query fragment),
// Fig. 6 (Query 1) and Fig. 12 (Query 2) with their multiplicity labels,
// the Fig. 11 reduction classes, and the generated SQL of Sec. 3.4 for the
// fragment's four plans (Fig. 5).
#include <cstdio>

#include "bench/bench_util.h"
#include "silkroute/partition.h"
#include "silkroute/queries.h"
#include "silkroute/sqlgen.h"

using namespace silkroute;
using namespace silkroute::core;

int main() {
  auto db = bench::MakeDatabase(0.001);
  Publisher publisher(db.get());

  std::printf("%s", bench::Header("E7 — view trees and generated SQL"));
  bench::BenchReport report("view_trees");
  auto add_tree = [&](const char* name, const ViewTree& tree) {
    report.Add(name,
               {{"nodes", static_cast<double>(tree.num_nodes())},
                {"edges", static_cast<double>(tree.num_edges())},
                {"plans", static_cast<double>(uint64_t{1}
                                              << tree.num_edges())}});
  };

  {
    auto tree = publisher.BuildViewTree(QueryFragmentRxl());
    if (!tree.ok()) return 1;
    add_tree("fragment", *tree);
    std::printf("\nFig. 4 — view tree of the query fragment:\n%s",
                tree->ToString().c_str());
    std::printf("\nFig. 5 — the %zu plans of the fragment:\n",
                size_t{1} << tree->num_edges());
    for (uint64_t mask = 0; mask < (uint64_t{1} << tree->num_edges());
         ++mask) {
      auto plan = Partition::FromMask(*tree, mask);
      if (!plan.ok()) return 1;
      std::printf("  plan %llu: %s\n",
                  static_cast<unsigned long long>(mask),
                  plan->ToString().c_str());
    }
    std::printf("\nSec. 3.4 — unified outer-join SQL for the fragment:\n");
    SqlGenerator gen(&*tree, SqlGenStyle::kOuterJoin, false);
    auto spec = gen.GenerateComponent(Partition::Unified(*tree).components()[0].nodes);
    if (!spec.ok()) return 1;
    std::printf("  %s\n", spec->sql.c_str());
  }

  {
    auto tree = publisher.BuildViewTree(Query1Rxl());
    if (!tree.ok()) return 1;
    add_tree("query1", *tree);
    std::printf("\nFig. 6 — labeled view tree of Query 1 "
                "(%zu nodes, %zu edges, %llu plans):\n%s",
                tree->num_nodes(), tree->num_edges(),
                static_cast<unsigned long long>(uint64_t{1}
                                                << tree->num_edges()),
                tree->ToString().c_str());
    auto exec = BuildExecComponent(
        *tree, Partition::Unified(*tree).components()[0], /*reduce=*/true);
    if (!exec.ok()) return 1;
    std::printf("\nFig. 11 — reduction classes of the unified plan:\n");
    for (const auto& cls : exec->nodes) {
      std::printf("  class headed by %s covers {",
                  tree->node(cls.head).skolem_name.c_str());
      for (size_t i = 0; i < cls.covered.size(); ++i) {
        std::printf("%s%s", i ? ", " : "",
                    tree->node(cls.covered[i]).skolem_name.c_str());
      }
      std::printf("}\n");
    }
  }

  {
    auto tree = publisher.BuildViewTree(Query2Rxl());
    if (!tree.ok()) return 1;
    add_tree("query2", *tree);
    std::printf("\nFig. 12 — labeled view tree of Query 2:\n%s",
                tree->ToString().c_str());
  }
  return 0;
}
