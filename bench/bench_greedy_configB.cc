// E4 — Fig. 15: Configuration B (large database, exhaustive search
// infeasible in the paper's setting): run the plan family produced by the
// greedy algorithm (with view-tree reduction) for Queries 1 and 2 and
// compare against the unified outer-union and fully partitioned plans.
//
// Paper (100 MB): outer-union ~4.7-5x slower than the best generated plan
// on query time, fully partitioned ~2.4-2.6x slower; on total time
// outer-union ~4.6x and fully partitioned ~3.1x slower.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "silkroute/greedy.h"
#include "silkroute/partition.h"
#include "silkroute/queries.h"

using namespace silkroute;
using namespace silkroute::core;

namespace {

int RunQuery(Publisher& publisher, std::string_view rxl, const char* name,
             bench::BenchReport* report) {
  auto tree = publisher.BuildViewTree(rxl);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  GreedyParams params;  // calibrated defaults; reduction on
  auto plan = GeneratePlanGreedy(*tree, publisher.estimator(), params);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- %s ---\n", name);
  std::printf("greedy %s\n", plan->ToString(*tree).c_str());
  auto masks = plan->PlanMasks();
  std::printf("generated plans: %zu\n", masks.size());

  PublishOptions opt;
  opt.reduce = true;
  opt.collect_sql = false;
  std::printf("%10s %8s %12s %12s\n", "mask", "streams", "query ms",
              "total ms");
  double best_query = 0, best_total = 0;
  for (uint64_t mask : masks) {
    PlanMetrics m = bench::MeasurePlan(publisher, *tree, mask, opt);
    std::printf("%10llu %8zu %12.1f %12.1f\n",
                static_cast<unsigned long long>(mask), m.num_streams,
                m.query_ms, m.total_ms());
    report->AddPlan(std::string(name) + "/mask_" + std::to_string(mask), m);
    if (best_query == 0 || m.query_ms < best_query) best_query = m.query_ms;
    if (best_total == 0 || m.total_ms() < best_total) best_total = m.total_ms();
  }

  PublishOptions ou;
  ou.style = SqlGenStyle::kOuterUnion;
  ou.reduce = false;
  ou.collect_sql = false;
  const uint64_t unified = (uint64_t{1} << tree->num_edges()) - 1;
  PlanMetrics outer_union = bench::MeasurePlan(publisher, *tree, unified, ou);
  PlanMetrics fully_part = bench::MeasurePlan(publisher, *tree, 0, opt);

  std::printf("baselines:\n");
  std::printf("  unified outer-union : %10.1f ms query, %10.1f ms total\n",
              outer_union.query_ms, outer_union.total_ms());
  std::printf("  fully partitioned   : %10.1f ms query, %10.1f ms total\n",
              fully_part.query_ms, fully_part.total_ms());
  std::printf("ratios vs best generated plan "
              "(paper: OU ~4.7-5x / ~4.6x, FP ~2.4-2.6x / ~3.1x):\n");
  std::printf("  outer-union / best query : %5.2fx\n",
              outer_union.query_ms / best_query);
  std::printf("  outer-union / best total : %5.2fx\n",
              outer_union.total_ms() / best_total);
  std::printf("  fully-part / best query  : %5.2fx\n",
              fully_part.query_ms / best_query);
  std::printf("  fully-part / best total  : %5.2fx\n",
              fully_part.total_ms() / best_total);
  report->AddPlan(std::string(name) + "/unified_outer_union", outer_union);
  report->AddPlan(std::string(name) + "/fully_partitioned", fully_part);
  report->Add(std::string(name) + "/summary",
              {{"generated_plans", static_cast<double>(masks.size())},
               {"best_query_ms", best_query},
               {"best_total_ms", best_total},
               {"outer_union_vs_best_query", outer_union.query_ms / best_query},
               {"fully_part_vs_best_query", fully_part.query_ms / best_query}});
  return 0;
}

}  // namespace

int main() {
  const double scale = silkroute::bench::EnvScale("SILK_SCALE_B", 0.25);
  auto db = silkroute::bench::MakeDatabase(scale);
  std::printf("%s", silkroute::bench::Header(
                        "E4 / Fig. 15 — Config B, greedy plan family"));
  std::printf("database bytes: %zu (scale %.3f)\n", db->TotalByteSize(),
              scale);
  Publisher publisher(db.get());
  silkroute::bench::BenchReport report("greedy_configB");
  int rc = RunQuery(publisher, Query1Rxl(), "Query 1", &report);
  if (rc != 0) return rc;
  return RunQuery(publisher, Query2Rxl(), "Query 2", &report);
}
