// Shared driver for the exhaustive plan-space sweeps (Figs. 13 and 14):
// runs all 512 plans of a query, with and without view-tree reduction,
// and prints per-stream-count summaries plus the paper's headline ratios.
#ifndef SILKROUTE_BENCH_EXHAUSTIVE_COMMON_H_
#define SILKROUTE_BENCH_EXHAUSTIVE_COMMON_H_

#include <algorithm>
#include <cstdio>
#include <map>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "silkroute/partition.h"
#include "silkroute/queries.h"

namespace silkroute::bench {

struct PlanSample {
  uint64_t mask = 0;
  size_t streams = 0;
  double query_ms = 0;
  double total_ms = 0;
  bool timed_out = false;
};

struct SweepResult {
  std::vector<PlanSample> plans;  // one per mask

  const PlanSample& Best(bool total) const {
    return *std::min_element(plans.begin(), plans.end(),
                             [&](const PlanSample& a, const PlanSample& b) {
                               if (a.timed_out != b.timed_out) {
                                 return !a.timed_out;
                               }
                               return total ? a.total_ms < b.total_ms
                                            : a.query_ms < b.query_ms;
                             });
  }

  size_t NumTimedOut() const {
    size_t n = 0;
    for (const auto& p : plans) {
      if (p.timed_out) ++n;
    }
    return n;
  }
  const PlanSample& ForMask(uint64_t mask) const {
    for (const auto& p : plans) {
      if (p.mask == mask) return p;
    }
    return plans.front();
  }
};

inline SweepResult SweepAllPlans(core::Publisher& publisher,
                                 const core::ViewTree& tree,
                                 core::SqlGenStyle style, bool reduce) {
  SweepResult result;
  core::PublishOptions opt;
  opt.style = style;
  opt.reduce = reduce;
  opt.collect_sql = false;
  // The paper capped each sub-query at five minutes; 101 of Query 1's
  // non-reduced plans timed out. The cap here is scaled to our
  // milliseconds-range times.
  opt.query_timeout_ms = EnvScale("SILK_TIMEOUT_MS", 60000);
  const uint64_t num_plans = uint64_t{1} << tree.num_edges();
  for (uint64_t mask = 0; mask < num_plans; ++mask) {
    core::PlanMetrics m = MeasurePlan(publisher, tree, mask, opt);
    result.plans.push_back(
        {mask, m.num_streams, m.query_ms, m.total_ms(), m.timed_out});
  }
  return result;
}

inline void PrintByStreamCount(const SweepResult& sweep, bool total,
                               const char* label) {
  std::map<size_t, std::vector<double>> by_streams;
  for (const auto& p : sweep.plans) {
    if (p.timed_out) continue;
    by_streams[p.streams].push_back(total ? p.total_ms : p.query_ms);
  }
  std::printf("\n%s (ms, per number of tuple streams)\n", label);
  std::printf("%8s %7s %9s %9s %9s\n", "streams", "plans", "min", "median",
              "max");
  for (auto& [streams, times] : by_streams) {
    std::sort(times.begin(), times.end());
    std::printf("%8zu %7zu %9.1f %9.1f %9.1f\n", streams, times.size(),
                times.front(), times[times.size() / 2], times.back());
  }
}

/// Runs the full Fig. 13/14 experiment for one query. `bench_name` names
/// the BENCH_<name>.json results file.
inline int RunExhaustive(std::string_view rxl, const char* figure,
                         const char* query_name, const char* bench_name) {
  const double scale = EnvScale("SILK_SCALE_A", 0.025);
  auto db = MakeDatabase(scale);
  std::printf("%s", Header(std::string(figure) + " — " + query_name +
                           ", Config A, all 512 plans"));
  std::printf("database bytes: %zu (scale %.3f)\n", db->TotalByteSize(),
              scale);

  core::Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(rxl);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  SweepResult nonreduced = SweepAllPlans(
      publisher, *tree, core::SqlGenStyle::kOuterJoin, /*reduce=*/false);
  SweepResult reduced = SweepAllPlans(
      publisher, *tree, core::SqlGenStyle::kOuterJoin, /*reduce=*/true);

  std::printf("timed-out plans (cap %.0f ms): %zu non-reduced, %zu reduced "
              "(paper: 101 of Query 1's plans hit the 5-minute cap)\n",
              EnvScale("SILK_TIMEOUT_MS", 60000),
              nonreduced.NumTimedOut(), reduced.NumTimedOut());
  PrintByStreamCount(nonreduced, /*total=*/false,
                     "(a) query-only time, non-reduced plans");
  PrintByStreamCount(reduced, /*total=*/false,
                     "(b) query-only time, with view-tree reduction");
  PrintByStreamCount(reduced, /*total=*/true,
                     "(c) total time, with view-tree reduction");

  // Reference plans the paper calls out.
  const uint64_t unified = (uint64_t{1} << tree->num_edges()) - 1;
  core::PublishOptions ou;
  ou.style = core::SqlGenStyle::kOuterUnion;
  ou.reduce = false;
  ou.collect_sql = false;
  core::PlanMetrics outer_union =
      MeasurePlan(publisher, *tree, unified, ou);

  const PlanSample& fastest_q = reduced.Best(/*total=*/false);
  const PlanSample& fastest_t = reduced.Best(/*total=*/true);
  const PlanSample& fully_part = reduced.ForMask(0);
  const PlanSample& fastest_nored_q = nonreduced.Best(/*total=*/false);

  std::printf("\nheadline comparisons\n");
  std::printf("  optimal (reduced)            : %7.1f ms query, %7.1f ms total"
              "  [mask %llu, %zu streams]\n",
              fastest_q.query_ms, fastest_t.total_ms,
              static_cast<unsigned long long>(fastest_q.mask),
              fastest_q.streams);
  std::printf("  optimal (non-reduced)        : %7.1f ms query\n",
              fastest_nored_q.query_ms);
  std::printf("  unified outer-union [9]      : %7.1f ms query, %7.1f ms total\n",
              outer_union.query_ms, outer_union.total_ms());
  std::printf("  fully partitioned (reduced)  : %7.1f ms query, %7.1f ms total\n",
              fully_part.query_ms, fully_part.total_ms);
  std::printf("\nratios vs optimal (paper: outer-union 2.6-4.3x, fully "
              "partitioned 2.4-3.7x,\nreduction speeds the fastest plans "
              "~2.5x)\n");
  std::printf("  outer-union / optimal query  : %5.2fx\n",
              outer_union.query_ms / fastest_q.query_ms);
  std::printf("  outer-union / optimal total  : %5.2fx\n",
              outer_union.total_ms() / fastest_t.total_ms);
  std::printf("  fully-part / optimal query   : %5.2fx\n",
              fully_part.query_ms / fastest_q.query_ms);
  std::printf("  fully-part / optimal total   : %5.2fx\n",
              fully_part.total_ms / fastest_t.total_ms);
  std::printf("  non-reduced / reduced optimal: %5.2fx\n",
              fastest_nored_q.query_ms / fastest_q.query_ms);

  BenchReport report(bench_name);
  auto add_sample = [&](const char* row, const PlanSample& p) {
    report.Add(row, {{"mask", static_cast<double>(p.mask)},
                     {"streams", static_cast<double>(p.streams)},
                     {"query_ms", p.query_ms},
                     {"total_ms", p.total_ms},
                     {"timed_out", p.timed_out ? 1.0 : 0.0}});
  };
  add_sample("optimal_reduced_query", fastest_q);
  add_sample("optimal_reduced_total", fastest_t);
  add_sample("optimal_nonreduced_query", fastest_nored_q);
  add_sample("fully_partitioned_reduced", fully_part);
  report.AddPlan("unified_outer_union", outer_union);
  report.Add("sweep",
             {{"plans", static_cast<double>(reduced.plans.size())},
              {"timed_out_nonreduced",
               static_cast<double>(nonreduced.NumTimedOut())},
              {"timed_out_reduced", static_cast<double>(reduced.NumTimedOut())},
              {"outer_union_vs_optimal_query",
               outer_union.query_ms / fastest_q.query_ms},
              {"fully_part_vs_optimal_query",
               fully_part.query_ms / fastest_q.query_ms},
              {"nonreduced_vs_reduced_optimal",
               fastest_nored_q.query_ms / fastest_q.query_ms}});
  return 0;
}

}  // namespace silkroute::bench

#endif  // SILKROUTE_BENCH_EXHAUSTIVE_COMMON_H_
