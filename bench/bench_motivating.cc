// E1 — the motivating table of Sec. 2: evaluating Query 1 with 10 SQL
// queries (fully partitioned), the best 5-query plan, and 1 query (the
// unified sorted-outer-union plan), reporting total and query-only time.
//
// Paper (100 MB): 10 queries 1837s/584s, 5 queries 592s/244s (best),
// 1 query 2729s/1234s — the middle plan wins on both metrics and the
// unified plan is the slowest. The absolute numbers here differ (in-memory
// engine); the ordering is the reproduced result.
#include <cstdio>

#include "bench/bench_util.h"
#include "silkroute/partition.h"
#include "silkroute/queries.h"

using namespace silkroute;
using namespace silkroute::core;

int main() {
  const double scale = bench::EnvScale("SILK_SCALE_A", 0.025);
  auto db = bench::MakeDatabase(scale);
  std::printf("%s", bench::Header("E1: Sec. 2 motivating table (Query 1)"));
  std::printf("database bytes: %zu (scale %.3f)\n", db->TotalByteSize(),
              scale);

  Publisher publisher(db.get());
  auto tree = publisher.BuildViewTree(Query1Rxl());
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }

  struct Row {
    const char* label;
    uint64_t mask;
    SqlGenStyle style;
  };
  // Mask 0x1E8 keeps the order subtree and part-name edges together: the
  // 5-stream plan that the exhaustive sweep finds near-optimal.
  const Row rows[] = {
      {"10 (fully partitioned)", 0, SqlGenStyle::kOuterJoin},
      {" 5 (best observed)", 0x1E8, SqlGenStyle::kOuterJoin},
      {" 1 (sorted outer union)", 0x1FF, SqlGenStyle::kOuterUnion},
  };

  PublishOptions opt;
  // SilkRoute's SQL generation (with view-tree reduction) for the
  // multi-stream plans; the 1-query row is the sorted outer-union baseline
  // of [9], which has no reduction.
  bench::BenchReport report("motivating");
  std::printf("\n%-26s %12s %12s\n", "No. of queries", "Total Time",
              "Query Time");
  for (const Row& row : rows) {
    opt.style = row.style;
    opt.reduce = row.style == SqlGenStyle::kOuterJoin;
    PlanMetrics m = bench::MeasurePlan(publisher, *tree, row.mask, opt);
    std::printf("%-26s %9.1f ms %9.1f ms\n", row.label, m.total_ms(),
                m.query_ms);
    report.AddPlan(row.label, m);
  }
  std::printf(
      "\nexpected shape: the middle plan is fastest on both metrics; the\n"
      "unified plan is the slowest despite being a single SQL query.\n");
  return 0;
}
