// E5/E6 — Fig. 18 and Sec. 5.1: the plans selected by the greedy
// algorithm for Queries 1 and 2, from non-reduced and reduced view trees,
// plus the number of cost-estimate requests sent to the RDBMS oracle.
// The bench then validates the paper's central claim — "the generated
// plans correspond directly to the fastest plans measured" — by ranking
// the greedy family inside the exhaustive sweep.
#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_util.h"
#include "bench/exhaustive_common.h"
#include "silkroute/greedy.h"
#include "silkroute/queries.h"

using namespace silkroute;
using namespace silkroute::core;

namespace {

int RunQuery(Publisher& publisher, std::string_view rxl, const char* name,
             const char* figure, bench::BenchReport* report) {
  auto tree = publisher.BuildViewTree(rxl);
  if (!tree.ok()) {
    std::fprintf(stderr, "%s\n", tree.status().ToString().c_str());
    return 1;
  }
  std::printf("\n--- %s (%s) ---\n", name, figure);

  GreedyPlan plans[2];
  for (bool reduce : {false, true}) {
    GreedyParams params;
    params.reduce = reduce;
    auto plan = GeneratePlanGreedy(*tree, publisher.estimator(), params);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    plans[reduce ? 1 : 0] = *plan;
    std::printf("%-12s %s\n", reduce ? "reduced:" : "non-reduced:",
                plan->ToString(*tree).c_str());
    std::printf("             plan family size: %zu  (paper Sec. 5.1: 22 "
                "non-reduced / 25 reduced requests, vs 81 worst case)\n",
                plan->PlanMasks().size());
  }

  // Rank the reduced greedy family within the exhaustive reduced sweep.
  std::printf("ranking the greedy family in the exhaustive sweep...\n");
  bench::SweepResult sweep = bench::SweepAllPlans(
      publisher, *tree, SqlGenStyle::kOuterJoin, /*reduce=*/true);
  std::vector<bench::PlanSample> sorted = sweep.plans;
  std::sort(sorted.begin(), sorted.end(),
            [](const bench::PlanSample& a, const bench::PlanSample& b) {
              return a.total_ms < b.total_ms;
            });
  std::set<uint64_t> family;
  for (uint64_t mask : plans[1].PlanMasks()) family.insert(mask);
  size_t worst_rank = 0;
  size_t in_top = 0;
  const size_t family_size = family.size();
  const double optimal = sorted.front().total_ms;
  const double worst_overall = sorted.back().total_ms;
  double family_best = 0, family_worst = 0;
  for (size_t rank = 0; rank < sorted.size(); ++rank) {
    if (family.count(sorted[rank].mask) > 0) {
      worst_rank = rank + 1;
      if (rank < 2 * family_size) ++in_top;
      if (family_best == 0) family_best = sorted[rank].total_ms;
      family_worst = sorted[rank].total_ms;
    }
  }
  std::printf("greedy family: %zu plans; worst rank %zu of %zu; %zu within "
              "the top %zu\n",
              family_size, worst_rank, sorted.size(), in_top,
              2 * family_size);
  std::printf("family best %.1f ms (%.2fx optimal), family worst %.1f ms "
              "(%.2fx optimal); plan-space worst %.1f ms (%.2fx optimal)\n",
              family_best, family_best / optimal, family_worst,
              family_worst / optimal, worst_overall,
              worst_overall / optimal);
  std::printf("(paper: the generated plans correspond to the fastest %zu "
              "plans)\n", family_size);
  report->Add(name,
              {{"family_size", static_cast<double>(family_size)},
               {"worst_rank", static_cast<double>(worst_rank)},
               {"plans_ranked", static_cast<double>(sorted.size())},
               {"in_top_2x", static_cast<double>(in_top)},
               {"optimal_total_ms", optimal},
               {"family_best_total_ms", family_best},
               {"family_worst_total_ms", family_worst},
               {"family_best_vs_optimal", family_best / optimal},
               {"family_worst_vs_optimal", family_worst / optimal}});
  return 0;
}

}  // namespace

int main() {
  // Smaller default than the Config A sweeps: this bench runs two full
  // 512-plan sweeps to rank the greedy families. Override with
  // SILK_SCALE_RANK.
  const double scale = silkroute::bench::EnvScale("SILK_SCALE_RANK", 0.01);
  auto db = silkroute::bench::MakeDatabase(scale);
  std::printf("%s",
              silkroute::bench::Header(
                  "E5/E6 — Fig. 18 greedy plan selection + Sec. 5.1 oracle "
                  "requests"));
  std::printf("database bytes: %zu (scale %.3f)\n", db->TotalByteSize(),
              scale);
  Publisher publisher(db.get());
  silkroute::bench::BenchReport report("greedy_plans");
  int rc = RunQuery(publisher, Query1Rxl(), "Query 1", "Fig. 18 a/b",
                    &report);
  if (rc != 0) return rc;
  return RunQuery(publisher, Query2Rxl(), "Query 2", "Fig. 18 c/d", &report);
}
