// Service load benchmark: N concurrent publish requests through the
// PublishingService, healthy and with one sick backend table. Reports
// throughput, shed rate, latency percentiles, and the circuit-breaker /
// degradation counters that explain them.
//
// Environment knobs (on top of the bench_util scales):
//   SILK_SERVICE_REQUESTS    -- concurrent publish requests (default 48)
//   SILK_SERVICE_WORKERS     -- worker-pool threads (default 8)
//   SILK_SERVICE_PENDING     -- admission request slots (default 16)
//   SILK_SERVICE_DEADLINE_MS -- per-request deadline (default 0 = none)
//   SILK_SICK_TABLE          -- table failed in the sick run (default PartSupp)
//   SILK_ENGINE_THREADS      -- intra-query morsel parallelism (default 1)
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "engine/fault_injection.h"
#include "net/remote_executor.h"
#include "net/replica_set.h"
#include "net/server.h"
#include "service/publishing_service.h"
#include "silkroute/queries.h"

namespace silkroute::bench {
namespace {

struct LoadResult {
  double wall_ms = 0;
  std::vector<double> latencies_ms;  // admitted requests only
  size_t shed = 0;
  service::ServiceMetrics metrics;
};

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  size_t index = static_cast<size_t>(p * static_cast<double>(values.size()));
  return values[std::min(index, values.size() - 1)];
}

LoadResult RunLoad(const Database* db, engine::SqlExecutor* executor,
                   int requests) {
  service::ServiceOptions options;
  options.workers = static_cast<size_t>(EnvInt("SILK_SERVICE_WORKERS", 8));
  options.admission.max_pending_requests =
      static_cast<size_t>(EnvInt("SILK_SERVICE_PENDING", 16));
  options.default_deadline_ms = EnvScale("SILK_SERVICE_DEADLINE_MS", 0);
  options.engine_threads = EnvInt("SILK_ENGINE_THREADS", 1);
  options.retry.sleep_fn = [](double) {};  // keep the sick run fast
  options.executor = executor;
  service::PublishingService service(db, options);

  service::ServiceRequest prototype;
  prototype.rxl = std::string(core::Query1Rxl());
  prototype.options.document_element = "suppliers";

  std::vector<service::ServiceRequest> batch(static_cast<size_t>(requests),
                                             prototype);
  Timer timer;
  auto responses = service.PublishAll(std::move(batch));
  LoadResult result;
  result.wall_ms = timer.ElapsedMillis();
  for (const auto& response : responses) {
    if (response.status.code() == StatusCode::kResourceExhausted) {
      ++result.shed;
    } else {
      result.latencies_ms.push_back(response.elapsed_ms);
    }
  }
  result.metrics = service.metrics();
  return result;
}

void Report(const char* scenario, const LoadResult& r, int requests,
            BenchReport* report) {
  double served = static_cast<double>(requests) - static_cast<double>(r.shed);
  double throughput = r.wall_ms > 0 ? served / (r.wall_ms / 1000.0) : 0;
  std::printf("%-12s %4d req  wall %8.1f ms  %7.1f req/s  shed %4.1f%%  "
              "p50 %7.1f ms  p95 %7.1f ms\n",
              scenario, requests, r.wall_ms, throughput,
              100.0 * static_cast<double>(r.shed) / requests,
              Percentile(r.latencies_ms, 0.50),
              Percentile(r.latencies_ms, 0.95));
  std::printf("             completed %zu  timed_out %zu  failed %zu  "
              "breaker trips %zu  fast-fails %zu\n",
              r.metrics.completed, r.metrics.timed_out, r.metrics.failed,
              r.metrics.breaker_trips, r.metrics.breaker_fast_fails);
  report->Add(scenario,
              {{"requests", static_cast<double>(requests)},
               {"wall_ms", r.wall_ms},
               {"throughput_rps", throughput},
               {"shed", static_cast<double>(r.shed)},
               {"p50_ms", Percentile(r.latencies_ms, 0.50)},
               {"p95_ms", Percentile(r.latencies_ms, 0.95)},
               {"completed", static_cast<double>(r.metrics.completed)},
               {"timed_out", static_cast<double>(r.metrics.timed_out)},
               {"failed", static_cast<double>(r.metrics.failed)},
               {"breaker_trips", static_cast<double>(r.metrics.breaker_trips)},
               {"breaker_fast_fails",
                static_cast<double>(r.metrics.breaker_fast_fails)}});
}

}  // namespace
}  // namespace silkroute::bench

int main() {
  using namespace silkroute;
  using namespace silkroute::bench;

  double scale = EnvScale("SILK_SCALE_A", 0.025);
  int requests = EnvInt("SILK_SERVICE_REQUESTS", 48);
  auto db = MakeDatabase(scale);
  std::printf("%s", Header("Service load, Query 1, scale " +
                           std::to_string(scale)));

  BenchReport report("service_load");
  // Healthy source: the service's own DatabaseExecutor.
  Report("healthy", RunLoad(db.get(), nullptr, requests), requests, &report);

  // One sick table: every query joining it fails permanently. The first
  // failures trip its breaker; later requests degrade around it without
  // executing (or retrying) doomed queries.
  const char* sick_table = std::getenv("SILK_SICK_TABLE");
  std::string sick = sick_table && sick_table[0] ? sick_table : "PartSupp";
  engine::DatabaseExecutor db_executor(db.get());
  db_executor.set_parallelism(EnvInt("SILK_ENGINE_THREADS", 1));
  engine::FaultPolicy policy;
  engine::FaultRule rule;
  rule.table = sick;
  rule.fail = true;
  policy.rules.push_back(rule);
  engine::FaultInjectingExecutor faulty(&db_executor, policy);
  faulty.set_sleep_fn([](double) {});
  std::printf("sick table: %s\n", sick.c_str());
  Report("sick-table", RunLoad(db.get(), &faulty, requests), requests,
         &report);

  // Remote backend: the same queries through an in-process EngineServer
  // over a real loopback socket — the full wire cost (frame encode/decode,
  // payload hash, connection pooling) relative to the in-process healthy
  // run. Loopback RTT varies across machines, so baselines compare with a
  // loose tolerance.
  net::EngineServerOptions server_options;
  server_options.workers = static_cast<size_t>(EnvInt("SILK_SERVICE_WORKERS", 8));
  server_options.engine_threads = EnvInt("SILK_ENGINE_THREADS", 1);
  net::EngineServer server(db.get(), server_options);
  auto started = server.Start();
  if (!started.ok()) {
    std::printf("remote scenario skipped: %s\n",
                std::string(started.message()).c_str());
    return 0;
  }
  net::RemoteExecutorOptions remote_options;
  remote_options.port = server.port();
  net::RemoteSqlExecutor remote(remote_options);
  Report("remote", RunLoad(db.get(), &remote, requests), requests, &report);
  remote.Shutdown();

  // Replica set: the same load across three in-process replicas behind
  // health-aware power-of-two-choices routing with hedging enabled. The
  // interesting delta is against the single "remote" row: routing spreads
  // in-flight work, so wall time should not regress despite the extra
  // bookkeeping. Like "remote", compared with a loose tolerance.
  net::EngineServer replica_b(db.get(), server_options);
  net::EngineServer replica_c(db.get(), server_options);
  if (replica_b.Start().ok() && replica_c.Start().ok()) {
    net::ReplicaSetOptions set_options;
    set_options.backend = "bench";
    set_options.remote.port = 0;  // per-endpoint ports below
    for (net::EngineServer* s : {&server, &replica_b, &replica_c}) {
      net::ReplicaEndpoint endpoint;
      endpoint.name = "r" + std::to_string(set_options.endpoints.size());
      endpoint.host = "127.0.0.1";
      endpoint.port = s->port();
      set_options.endpoints.push_back(endpoint);
    }
    net::ReplicaSet set(set_options);
    Report("replicas", RunLoad(db.get(), &set, requests), requests, &report);
    std::printf("             hedges fired %zu  won %zu  ejections %zu\n",
                set.hedges_fired(), set.hedges_won(), set.ejections());
    set.Shutdown();
  } else {
    std::printf("replicas scenario skipped: extra replicas failed to start\n");
  }
  replica_b.Shutdown();
  replica_c.Shutdown();
  server.Shutdown();
  return 0;
}
