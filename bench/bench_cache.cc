// Result-cache benchmark: the cost of a publish across the cache states the
// middle-ware scenario cycles through (DESIGN.md §15).
//
//   cold         -- no cache: every component query executes, binds, tags.
//   warm-doc     -- unchanged view republished through a warm cache: the
//                   whole document is served from one lookup (the ≥5x
//                   speedup target of the cache work).
//   incremental  -- one table received a delta row: only the components
//                   naming it re-execute; every other fragment is spliced
//                   from cache by the deterministic tagger merge.
//   mix-95-5     -- the paper's read-heavy serving loop: a run of publishes
//                   where 1 in 20 is preceded by a table mutation.
//
// Environment knobs (on top of the bench_util scales):
//   SILK_REPEAT     -- repetitions per measured state, fastest kept (default 3)
//   SILK_CACHE_MIX  -- publishes in the 95/5 mix (default 100)
#include <algorithm>
#include <cstdio>
#include <sstream>
#include <string>

#include "bench/bench_util.h"
#include "common/timer.h"
#include "engine/result_cache.h"
#include "silkroute/queries.h"

namespace silkroute::bench {
namespace {

core::PublishOptions BaseOptions() {
  core::PublishOptions options;
  // Fully partitioned = one query per view-tree node: the most component
  // boundaries, hence the sharpest delta attribution and the most splicing.
  options.strategy = core::PlanStrategy::kFullyPartitioned;
  options.document_element = "suppliers";
  return options;
}

double PublishOnce(core::Publisher& publisher,
                   const core::PublishOptions& options,
                   core::PlanMetrics* metrics_out = nullptr) {
  std::ostringstream sink;
  Timer timer;
  auto result = publisher.Publish(std::string(core::Query1Rxl()), options,
                                  &sink);
  double elapsed = timer.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "publish failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  if (metrics_out != nullptr) *metrics_out = result->metrics;
  return elapsed;
}

// Appends a duplicate of the table's first row: the smallest delta that
// bumps its version and dirties every component naming it.
void AppendDeltaRow(Database* db, const std::string& table_name) {
  auto table = db->GetTable(table_name);
  if (!table.ok() || (*table)->num_rows() == 0) {
    std::fprintf(stderr, "no delta row available for '%s'\n",
                 table_name.c_str());
    std::exit(1);
  }
  Tuple row = (*table)->rows().front();
  (*table)->InsertUnchecked(std::move(row));
}

}  // namespace
}  // namespace silkroute::bench

int main() {
  using namespace silkroute;
  using namespace silkroute::bench;

  double scale = EnvScale("SILK_SCALE_A", 0.025);
  int repeat = EnvInt("SILK_REPEAT", 3);
  int mix_publishes = EnvInt("SILK_CACHE_MIX", 100);
  auto db = MakeDatabase(scale);
  core::Publisher publisher(db.get());
  std::printf("%s", Header("Result cache, Query 1, scale " +
                           std::to_string(scale)));

  BenchReport report("cache");

  // Cold: no cache at all — the reference the warm rows are read against.
  core::PlanMetrics cold_metrics;
  double cold_ms = 1e300;
  for (int i = 0; i < repeat; ++i) {
    cold_ms = std::min(cold_ms,
                       PublishOnce(publisher, BaseOptions(), &cold_metrics));
  }
  std::printf("cold         %8.2f ms  %zu components  %zu rows  %zu xml bytes\n",
              cold_ms, cold_metrics.num_streams, cold_metrics.rows,
              cold_metrics.xml_bytes);
  report.Add("cold",
             {{"publish_ms", cold_ms},
              {"components", static_cast<double>(cold_metrics.num_streams)},
              {"rows", static_cast<double>(cold_metrics.rows)},
              {"xml_bytes", static_cast<double>(cold_metrics.xml_bytes)}});

  engine::ResultCache cache(
      engine::ResultCache::Options{64ull << 20, 8, nullptr});
  core::PublishOptions cached = BaseOptions();
  cached.result_cache = &cache;
  PublishOnce(publisher, cached);  // prime fragments + document entry

  // Warm: nothing changed, so the republish is one document-cache lookup.
  core::PlanMetrics warm_metrics;
  double warm_ms = 1e300;
  for (int i = 0; i < repeat; ++i) {
    warm_ms = std::min(warm_ms, PublishOnce(publisher, cached, &warm_metrics));
  }
  double warm_speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
  std::printf("warm-doc     %8.2f ms  doc_hit %d  speedup %.1fx%s\n", warm_ms,
              warm_metrics.served_from_doc_cache ? 1 : 0, warm_speedup,
              warm_speedup >= 5.0 ? "" : "  (BELOW 5x TARGET)");
  report.Add("warm-doc",
             {{"publish_ms", warm_ms},
              {"doc_hit", warm_metrics.served_from_doc_cache ? 1.0 : 0.0}});

  // Incremental: dirty one table per publish; only its components re-run.
  core::PlanMetrics inc_metrics;
  double inc_ms = 1e300;
  for (int i = 0; i < repeat; ++i) {
    AppendDeltaRow(db.get(), "Region");
    core::PlanMetrics m;
    double ms = PublishOnce(publisher, cached, &m);
    if (ms < inc_ms) inc_ms = ms;
    inc_metrics = m;  // counters identical every iteration
  }
  std::printf("incremental  %8.2f ms  re-exec %zu / %zu components  "
              "spliced %zu  speedup %.1fx\n",
              inc_ms, inc_metrics.cache_misses,
              inc_metrics.cache_misses + inc_metrics.cache_hits,
              inc_metrics.cache_splices, inc_ms > 0 ? cold_ms / inc_ms : 0);
  report.Add("incremental",
             {{"publish_ms", inc_ms},
              {"hits", static_cast<double>(inc_metrics.cache_hits)},
              {"misses", static_cast<double>(inc_metrics.cache_misses)},
              {"splices", static_cast<double>(inc_metrics.cache_splices)}});

  // Read-heavy mix: 1 mutation per 20 publishes (the serving steady state).
  auto before = cache.stats();
  Timer mix_timer;
  for (int i = 0; i < mix_publishes; ++i) {
    if (i % 20 == 19) AppendDeltaRow(db.get(), "Region");
    PublishOnce(publisher, cached);
  }
  double mix_ms = mix_timer.ElapsedMillis();
  auto after = cache.stats();
  double mix_rps = mix_ms > 0 ? mix_publishes / (mix_ms / 1000.0) : 0;
  std::printf("mix-95-5     %8.2f ms  %d publishes  %7.1f req/s  "
              "hits %llu  misses %llu  splices %llu\n",
              mix_ms, mix_publishes, mix_rps,
              static_cast<unsigned long long>(after.hits - before.hits),
              static_cast<unsigned long long>(after.misses - before.misses),
              static_cast<unsigned long long>(after.splices - before.splices));
  report.Add("mix-95-5",
             {{"wall_ms", mix_ms},
              {"throughput_rps", mix_rps},
              {"hits", static_cast<double>(after.hits - before.hits)},
              {"misses", static_cast<double>(after.misses - before.misses)},
              {"splices", static_cast<double>(after.splices - before.splices)}});
  return 0;
}
