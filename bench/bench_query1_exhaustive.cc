// E2 — Fig. 13: Query 1 (orders nested under parts), Config A, execution
// times of all 512 plans: (a) query time non-reduced, (b) query time with
// view-tree reduction, (c) total time with reduction.
#include "bench/exhaustive_common.h"
#include "silkroute/queries.h"

int main() {
  return silkroute::bench::RunExhaustive(silkroute::core::Query1Rxl(),
                                         "E2 / Fig. 13", "Query 1",
                                         "query1_exhaustive");
}
