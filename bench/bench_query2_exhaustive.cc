// E3 — Fig. 14: Query 2 (orders parallel to parts: unions of outer joins
// instead of nested outer joins), Config A, all 512 plans.
#include "bench/exhaustive_common.h"
#include "silkroute/queries.h"

int main() {
  return silkroute::bench::RunExhaustive(silkroute::core::Query2Rxl(),
                                         "E3 / Fig. 14", "Query 2",
                                         "query2_exhaustive");
}
