// E9 (ablation, paper Sec. 7): "the outer-union plan may also be
// appropriate when a user query requests only a subset of the XML view,
// and the result document is small. In this scenario, the outer-union
// strategy should work well, because the resulting SQL query is usually
// simple."
//
// We materialize three views — the full Query 1 view and two increasingly
// selective subviews — under the unified outer-union plan and the greedy
// plan, and report the ratio. The paper's prediction: the outer-union
// penalty shrinks toward 1x as the fragment gets smaller.
#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"
#include "rxl/parser.h"
#include "silkroute/publisher.h"
#include "silkroute/queries.h"
#include "silkroute/subview.h"

using namespace silkroute;
using namespace silkroute::core;

int main() {
  const double scale = bench::EnvScale("SILK_SCALE_A", 0.025);
  auto db = bench::MakeDatabase(scale);
  std::printf("%s", bench::Header(
                        "E9 — Sec. 7 ablation: outer-union on small "
                        "subview results"));
  std::printf("database bytes: %zu (scale %.3f)\n\n", db->TotalByteSize(),
              scale);
  Publisher publisher(db.get());

  struct Case {
    const char* label;
    const char* path;  // nullptr = whole view
  };
  const Case cases[] = {
      {"full view", nullptr},
      {"/supplier[nation='FRANCE']", "/supplier[nation='FRANCE']"},
      {"/supplier/part/order[orderkey=7]",
       "/supplier/part/order[orderkey=7]"},
  };

  bench::BenchReport report("subview");
  std::printf("%-38s %10s %12s %12s %8s %12s\n", "view", "tuples",
              "outer-union", "greedy", "ratio", "penalty");
  for (const Case& c : cases) {
    auto view = rxl::ParseRxl(Query1Rxl());
    if (!view.ok()) return 1;
    std::string rxl_text;
    if (c.path == nullptr) {
      rxl_text = Query1Rxl();
    } else {
      auto composed = ComposeSubview(*view, c.path);
      if (!composed.ok()) {
        std::fprintf(stderr, "%s\n", composed.status().ToString().c_str());
        return 1;
      }
      rxl_text = composed->ToString();
    }

    PublishOptions ou;
    ou.strategy = PlanStrategy::kUnified;
    ou.style = SqlGenStyle::kOuterUnion;
    ou.reduce = false;
    ou.collect_sql = false;
    ou.document_element = "result";
    std::ostringstream sink1;
    auto mu = publisher.Publish(rxl_text, ou, &sink1);
    if (!mu.ok()) {
      std::fprintf(stderr, "%s\n", mu.status().ToString().c_str());
      return 1;
    }

    PublishOptions greedy;
    greedy.collect_sql = false;
    greedy.document_element = "result";
    std::ostringstream sink2;
    auto mg = publisher.Publish(rxl_text, greedy, &sink2);
    if (!mg.ok()) {
      std::fprintf(stderr, "%s\n", mg.status().ToString().c_str());
      return 1;
    }

    std::printf("%-38s %10zu %9.1f ms %9.1f ms %7.2fx %9.1f ms\n", c.label,
                mu->metrics.rows, mu->metrics.total_ms(),
                mg->metrics.total_ms(),
                mu->metrics.total_ms() / mg->metrics.total_ms(),
                mu->metrics.total_ms() - mg->metrics.total_ms());
    report.Add(c.label,
               {{"tuples", static_cast<double>(mu->metrics.rows)},
                {"outer_union_total_ms", mu->metrics.total_ms()},
                {"greedy_total_ms", mg->metrics.total_ms()},
                {"ratio", mu->metrics.total_ms() / mg->metrics.total_ms()},
                {"penalty_ms",
                 mu->metrics.total_ms() - mg->metrics.total_ms()}});
  }
  std::printf(
      "\nexpected shape: for small fragments the absolute penalty of the\n"
      "simple outer-union strategy (last column) collapses to a few ms —\n"
      "the Sec. 7 observation that it \"should work well\" for virtual-view\n"
      "queries, where plan generation effort is not worth spending.\n");
  return 0;
}
